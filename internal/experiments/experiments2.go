package experiments

import (
	"fmt"

	"repro/internal/checkpoint"
	"repro/internal/cluster"
	"repro/internal/costmodel"
	"repro/internal/hardware"
	"repro/internal/mechanism"
	"repro/internal/mpi"
	"repro/internal/policy"
	"repro/internal/simos/kernel"
	"repro/internal/simos/proc"
	"repro/internal/simtime"
	"repro/internal/syslevel"
	"repro/internal/trace"
	"repro/internal/userlevel"
	"repro/internal/workload"
)

// E5Storage reproduces §4.1's fault-tolerance argument about storage
// placement: with permanent node failures in the mix, local-only
// checkpoints (most of Table 1) protect far less than remote ones.
func E5Storage(mtbfHours []float64) *trace.Table {
	tb := trace.NewTable(
		"E5 — job makespan vs MTBF by checkpoint storage policy (48h job, 50% permanent failures)",
		"MTBF(h)", "policy", "makespan(h)", "lost-work(h)", "restarts", "utilization")
	for _, mh := range mtbfHours {
		mtbf := simtime.Duration(mh * float64(simtime.Hour))
		for _, pol := range []cluster.StoragePolicy{cluster.StoreNone, cluster.StoreLocal, cluster.StoreRemote} {
			cfg := cluster.JobConfig{
				Work:          48 * simtime.Hour,
				CkptCost:      3 * simtime.Minute,
				RestartCost:   2 * simtime.Minute,
				RepairTime:    10 * simtime.Minute,
				Storage:       pol,
				PermanentFrac: 0.5,
			}
			if pol != cluster.StoreNone {
				cfg.Policy = policy.Fixed(cluster.YoungInterval(cfg.CkptCost, mtbf))
			}
			r := cluster.AverageResult(cfg, cluster.Exponential{Mean: mtbf}, 99, 40)
			mk := "∞"
			if r.Completed {
				mk = fmt.Sprintf("%.1f", float64(r.Makespan)/float64(simtime.Hour))
			}
			tb.Row(mh, pol.String(), mk,
				fmt.Sprintf("%.2f", float64(r.LostWork)/float64(simtime.Hour)),
				r.Restarts, fmt.Sprintf("%.3f", r.Utilization))
		}
	}
	tb.Note("paper §4.1: \"most store the checkpoint locally ... thus checkpoint data cannot be")
	tb.Note("retrieved in case of a failure of the machine\"")
	return tb
}

// E6Interval reproduces the §1 autonomic-interval claim: a sweep of fixed
// intervals brackets Young's optimum, and the adaptive (online-estimate)
// policy approaches the oracle from a wrong prior.
func E6Interval(mtbfHours float64) *trace.Table {
	mtbf := simtime.Duration(mtbfHours * float64(simtime.Hour))
	cfg := cluster.JobConfig{
		Work:        72 * simtime.Hour,
		CkptCost:    3 * simtime.Minute,
		RestartCost: 2 * simtime.Minute,
		RepairTime:  5 * simtime.Minute,
		Storage:     cluster.StoreRemote,
	}
	opt := cluster.YoungInterval(cfg.CkptCost, mtbf)
	tb := trace.NewTable(
		fmt.Sprintf("E6 — checkpoint interval sweep (72h job, MTBF %.0fh, δ=3min; Young opt = %.0f min)",
			mtbfHours, float64(opt)/float64(simtime.Minute)),
		"interval(min)", "policy", "makespan(h)", "ckpt-overhead(h)", "lost-work(h)")
	for _, mult := range []float64{0.125, 0.25, 0.5, 1, 2, 4, 8} {
		iv := simtime.Duration(float64(opt) * mult)
		c := cfg
		c.Policy = policy.Fixed(iv)
		r := cluster.AverageResult(c, cluster.Exponential{Mean: mtbf}, 7, 40)
		label := "fixed"
		if mult == 1 {
			label = "fixed(=Young)"
		}
		tb.Row(fmt.Sprintf("%.0f", float64(iv)/float64(simtime.Minute)), label,
			fmt.Sprintf("%.2f", float64(r.Makespan)/float64(simtime.Hour)),
			fmt.Sprintf("%.2f", float64(r.CkptOverhead)/float64(simtime.Hour)),
			fmt.Sprintf("%.2f", float64(r.LostWork)/float64(simtime.Hour)))
	}
	d := cfg
	daly := cluster.DalyInterval(cfg.CkptCost, mtbf)
	d.Policy = policy.Fixed(daly)
	rd := cluster.AverageResult(d, cluster.Exponential{Mean: mtbf}, 7, 40)
	tb.Row(fmt.Sprintf("%.0f", float64(daly)/float64(simtime.Minute)), "fixed(=Daly)",
		fmt.Sprintf("%.2f", float64(rd.Makespan)/float64(simtime.Hour)),
		fmt.Sprintf("%.2f", float64(rd.CkptOverhead)/float64(simtime.Hour)),
		fmt.Sprintf("%.2f", float64(rd.LostWork)/float64(simtime.Hour)))

	a := cfg
	a.Policy = policy.AdaptiveYoung(cfg.CkptCost)
	a.PriorMTBF = 100 * simtime.Hour
	r := cluster.AverageResult(a, cluster.Exponential{Mean: mtbf}, 7, 40)
	tb.Row("adaptive", "autonomic(Young+MLE)",
		fmt.Sprintf("%.2f", float64(r.Makespan)/float64(simtime.Hour)),
		fmt.Sprintf("%.2f", float64(r.CkptOverhead)/float64(simtime.Hour)),
		fmt.Sprintf("%.2f", float64(r.LostWork)/float64(simtime.Hour)))
	tb.Note("paper §1: autonomic systems adjust \"the checkpoint interval to the failure rate of the system\"")
	return tb
}

// E7Hardware reproduces §4.2: cache-line-granularity hardware logging vs
// page-granularity software tracking, and the ReVive/SafetyNet resource
// trade (unbounded memory log vs bounded CLB with overflow stalls).
func E7Hardware(mib int) *trace.Table {
	tb := trace.NewTable(
		"E7 — hardware (64B line) vs OS (4KiB page) checkpoint granularity per epoch",
		"workload", "line-bytes(MB)", "page-bytes(MB)", "page/line", "revive-traffic(ms)", "CLB-overflows(4Ki lines)")
	apps := []kernel.Program{
		workload.PointerChase{MiB: mib, WriteEvery: 8, Seed: 6},
		workload.Sparse{MiB: mib, WriteFrac: 0.05, Seed: 6},
		workload.Dense{MiB: mib},
	}
	for _, app := range apps {
		k := newMachine("e7", app)
		p, _ := k.Spawn(app.Name())
		workload.SetIterations(p, 1<<30)
		rv := hardware.NewReVive()
		if err := rv.Attach(p, k.CM, costmodel.Discard{}); err != nil {
			continue
		}
		k.RunFor(2 * simtime.Millisecond)
		rv.Checkpoint(k.Now())
		k.RunFor(5 * simtime.Millisecond)
		lineBytes := rv.PendingBytes()
		pageBytes := hardware.PageBytesFor(rv.LoggedLines())

		// SafetyNet on an identical fresh run.
		k2 := newMachine("e7b", app)
		p2, _ := k2.Spawn(app.Name())
		workload.SetIterations(p2, 1<<30)
		sn := hardware.NewSafetyNet(4096)
		_ = sn.Attach(p2, k2.CM, costmodel.Discard{}, k2.Now)
		k2.RunFor(7 * simtime.Millisecond)

		ratio := "—"
		if lineBytes > 0 {
			ratio = fmt.Sprintf("%.1f", float64(pageBytes)/float64(lineBytes))
		}
		tb.Row(app.Name(), mb(lineBytes), mb(pageBytes), ratio,
			rv.Stats().LogTraffic.Millis(), int64(sn.Stats().Overflows))
	}
	tb.Note("paper §4.2: hardware traces \"at the granularity of cache lines\"; SafetyNet needs more")
	tb.Note("resources (bounded CLBs) than ReVive (directory log in main memory)")
	return tb
}

// E8MPI reproduces the LAM/MPI coordinated-checkpointing behaviour:
// drain time and aggregate image size as the job scales.
func E8MPI(rankCounts []int, nodes int) *trace.Table {
	tb := trace.NewTable(
		fmt.Sprintf("E8 — coordinated checkpoint of an MPI halo-ring job (%d nodes)", nodes),
		"ranks", "drain(ms)", "images(MB)", "msgs-sent", "ckpt-ok")
	for _, nr := range rankCounts {
		c := cluster.New(cluster.Config{Nodes: nodes, Seed: 5, KernelCfg: kernel.DefaultConfig("")},
			costmodel.Default2005(), kernel.NewRegistry())
		j := mpi.NewJob(c, nr, func() mechanism.Mechanism { return syslevel.NewLAMMPI() })
		if err := j.Launch(mpi.HaloRing{MiB: 2, Iterations: 1 << 30, PagesPerIter: 64, HaloBytes: 8192}); err != nil {
			continue
		}
		c.RunFor(5 * simtime.Millisecond)
		var total int
		ok := false
		if err := j.RequestCheckpoint(nil, func(imgs []*checkpoint.Image) {
			ok = true
			for _, img := range imgs {
				total += img.PayloadBytes()
			}
		}); err != nil {
			continue
		}
		if err := j.WaitCheckpoint(simtime.Minute); err != nil {
			continue
		}
		tb.Row(nr, j.LastDrainTime.Millis(), mb(total), j.MessagesSent, ok)
	}
	tb.Note("paper §4.1: \"the global control on a large scale parallel computing could be hard\" —")
	tb.Note("drain time is the price of a consistent global state")
	return tb
}

// E9Matrix reproduces §3's kernel-persistent-state argument as a restart
// success matrix: workloads using sockets / PIDs / shared memory,
// checkpointed by mechanisms with and without virtualization.
func E9Matrix() *trace.Table {
	tb := trace.NewTable(
		"E9 — restart outcome on a different machine, by resource used and mechanism",
		"resource", "condor(user)", "CRAK(kernel)", "UCLiK(+pid)", "ZAP(pod)")
	type resCase struct {
		label string
		w     workload.ResourceUser
	}
	cases := []resCase{
		{"none", workload.ResourceUser{MiB: 1, Iterations: 200}},
		{"socket", workload.ResourceUser{MiB: 1, Iterations: 200, UseSocket: true}},
		{"pid", workload.ResourceUser{MiB: 1, Iterations: 200, CheckPID: true}},
		{"shm", workload.ResourceUser{MiB: 1, Iterations: 200, UseShm: true}},
		{"all", workload.ResourceUser{MiB: 1, Iterations: 200, UseSocket: true, UseShm: true, CheckPID: true}},
	}
	mks := []func() mechanism.Mechanism{
		func() mechanism.Mechanism { return userlevel.NewCondorStyle() },
		func() mechanism.Mechanism { return syslevel.NewCRAK() },
		func() mechanism.Mechanism { return syslevel.NewUCLiK() },
		func() mechanism.Mechanism { return syslevel.NewZAP() },
	}
	for _, rc := range cases {
		row := []any{rc.label}
		for _, mk := range mks {
			row = append(row, restartOutcome(mk, rc.w))
		}
		tb.Row(row...)
	}
	tb.Note("paper §3: user-level schemes cannot capture sockets/shm/PIDs; \"a system-level approach")
	tb.Note("can virtualizate these resources\" (ZAP pods)")
	return tb
}

// restartOutcome runs w, checkpoints it with a fresh instance from mk,
// restarts it on a different machine, and reports how the run ended.
func restartOutcome(mk func() mechanism.Mechanism, w workload.ResourceUser) string {
	m := mk()
	w.Iterations = 5000 // long enough that the checkpoint lands mid-run
	prepared := m.Prepare(w)
	k := newMachine("e9src", prepared)
	if err := m.Install(k); err != nil {
		return "install-err"
	}
	k.Procs.Allocate(0, "boot") // the app is not pid 1, so a fresh machine's pid 1 differs
	p, err := k.Spawn(prepared.Name())
	if err != nil {
		return "spawn-err"
	}
	if err := m.Setup(k, p); err != nil {
		return "setup-err"
	}
	for p.Regs().PC < 50 && p.State != proc.StateZombie {
		k.RunFor(20 * simtime.Microsecond)
	}
	if p.State == proc.StateZombie {
		return "finished-early"
	}
	tk, err := mechanism.Checkpoint(m, k, p, nil, nil)
	if err != nil {
		return "ckpt-err"
	}
	m2 := mk()
	dst := newMachine("e9dst", m2.Prepare(w))
	if err := m2.Install(dst); err != nil {
		return "install-err"
	}
	p2, err := m2.Restart(dst, []*checkpoint.Image{tk.Img}, true)
	if err != nil {
		return "restart-err"
	}
	if !dst.RunUntilExit(p2, dst.Now().Add(simtime.Minute)) {
		return "stuck"
	}
	switch p2.ExitCode {
	case workload.ExitOK:
		return "OK"
	case workload.ExitSocketLost:
		return "socket-lost"
	case workload.ExitPIDChanged:
		return "pid-changed"
	case workload.ExitShmLost:
		return "shm-lost"
	default:
		return fmt.Sprintf("exit-%d", p2.ExitCode)
	}
}

// E10Extras measures the remaining §4.1 behaviours: Software Suspend's
// whole-machine hibernate/resume, Checkpoint's fork consistency overlap,
// and gang preemption via C/R.
func E10Extras() *trace.Table {
	tb := trace.NewTable("E10 — hibernation, fork consistency, gang preemption", "scenario", "metric", "value")

	// Software Suspend.
	{
		m := syslevel.NewSoftwareSuspend()
		progs := []kernel.Program{workload.Dense{MiB: 4}, workload.Spin{Tag: "bg"}}
		k := newMachine("e10a", progs...)
		_ = m.Install(k)
		pa, _ := k.Spawn(progs[0].Name())
		pb, _ := k.Spawn(progs[1].Name())
		workload.SetIterations(pa, 1<<30)
		workload.SetIterations(pb, 1<<30)
		k.RunFor(5 * simtime.Millisecond)
		t0 := k.Now()
		imgs, err := m.Suspend(k, localDisk(), nil)
		if err == nil {
			suspend := k.Now().Sub(t0)
			t1 := k.Now()
			_, err = m.Resume(k, imgs)
			if err == nil {
				tb.Row("swsusp", "suspend(ms)", suspend.Millis())
				tb.Row("swsusp", "resume(ms)", k.Now().Sub(t1).Millis())
				tb.Row("swsusp", "processes", len(imgs))
			}
		}
	}

	// Fork consistency: parent progress during the save.
	{
		m := syslevel.NewCheckpointFork(0, nil)
		prog := workload.Dense{MiB: 8}
		prepared := m.Prepare(prog)
		k := newMachine("e10b", prepared)
		_ = m.Install(k)
		p, _ := k.Spawn(prepared.Name())
		workload.SetIterations(p, 1<<30)
		for !p.Registered["Checkpoint"] {
			k.RunFor(simtime.Millisecond)
		}
		before := p.Regs().PC*1_000_000 + p.Regs().G[4]
		tk, err := m.Request(k, p, localDisk(), nil)
		if err == nil && mechanism.WaitTicket(k, tk, simtime.Minute) == nil {
			imgAt := tk.Img.Threads[0].Regs.PC*1_000_000 + tk.Img.Threads[0].Regs.G[4]
			liveAt := p.Regs().PC*1_000_000 + p.Regs().G[4]
			tb.Row("fork-ckpt", "capture(ms)", tk.Total().Millis())
			tb.Row("fork-ckpt", "parent-progress-during-save(pages)", int64(liveAt-imgAt))
			_ = before
		}
	}

	// Gang preemption.
	{
		reg := kernel.NewRegistry()
		prog := workload.Sparse{MiB: 2, WriteFrac: 0.2, Seed: 8}
		reg.MustRegister(prog)
		c := cluster.New(cluster.Config{Nodes: 3, Seed: 2, KernelCfg: kernel.DefaultConfig("")},
			costmodel.Default2005(), reg)
		var members []cluster.GangMember
		for i := 0; i < 3; i++ {
			p, err := c.Node(i).K.Spawn(prog.Name())
			if err != nil {
				break
			}
			workload.SetIterations(p, 1<<30)
			members = append(members, cluster.GangMember{Node: i, PID: p.PID})
		}
		c.RunFor(5 * simtime.Millisecond)
		g := cluster.NewGang(c, func() mechanism.Mechanism { return syslevel.NewCRAK() }, members)
		// Captures run on the node kernels; measure the slowest node's
		// clock advance (the nodes work in parallel).
		nodeTime := func() simtime.Time {
			var worst simtime.Time
			for _, n := range c.Nodes() {
				if n.K.Now() > worst {
					worst = n.K.Now()
				}
			}
			return worst
		}
		t0 := nodeTime()
		if g.Preempt() == nil {
			tb.Row("gang", "preempt-3-procs(ms)", nodeTime().Sub(t0).Millis())
			t1 := nodeTime()
			if _, err := g.Resume(); err == nil {
				tb.Row("gang", "resume-3-procs(ms)", nodeTime().Sub(t1).Millis())
			}
		}
	}
	tb.Note("paper §1: \"safe pre-emption\", \"temporary suspension ... for planned system outage\"")
	return tb
}
