// Package integration holds cross-package end-to-end tests: randomized
// restart-equivalence (the repository's core guarantee under arbitrary
// mechanism/workload/timing combinations) and scenario tests that span
// kernel, mechanisms, cluster and storage.
package integration

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/costmodel"
	"repro/internal/mechanism"
	"repro/internal/simos/kernel"
	"repro/internal/simos/proc"
	"repro/internal/simtime"
	"repro/internal/storage"
	"repro/internal/syslevel"
	"repro/internal/userlevel"
	"repro/internal/workload"
)

func newMachine(name string, progs ...kernel.Program) *kernel.Kernel {
	reg := kernel.NewRegistry()
	for _, p := range progs {
		reg.MustRegister(p)
	}
	return kernel.New(kernel.DefaultConfig(name), costmodel.Default2005(), reg)
}

// randomWorkload picks a workload with random parameters. Iteration
// counts are sized so runs finish quickly but spill across many ticks.
func randomWorkload(rng *rand.Rand) (kernel.Program, uint64) {
	iters := uint64(10 + rng.Intn(20))
	switch rng.Intn(4) {
	case 0:
		return workload.Dense{MiB: 1 + rng.Intn(3)}, iters
	case 1:
		return workload.Sparse{MiB: 1 + rng.Intn(4), WriteFrac: 0.05 + rng.Float64()*0.4, Seed: rng.Uint64()}, iters
	case 2:
		return workload.Stencil{MiB: 2 * (1 + rng.Intn(2))}, iters
	default:
		return workload.Phased{MiB: 1 + rng.Intn(2), Seed: rng.Uint64(), PhaseIters: uint64(1 + rng.Intn(3))}, iters
	}
}

// randomMechanism picks a mechanism; all of these are storage-agnostic
// enough to write to a local disk.
func randomMechanism(rng *rand.Rand) func() mechanism.Mechanism {
	mks := []func() mechanism.Mechanism{
		func() mechanism.Mechanism { return syslevel.NewCRAK() },
		func() mechanism.Mechanism { return syslevel.NewUCLiK() },
		func() mechanism.Mechanism { return syslevel.NewCHPOX() },
		func() mechanism.Mechanism { return syslevel.NewEPCKPT() },
		func() mechanism.Mechanism { return syslevel.NewBLCR() },
		func() mechanism.Mechanism { return syslevel.NewPsncRC() },
		func() mechanism.Mechanism { return syslevel.NewTICK() },
		func() mechanism.Mechanism { return syslevel.NewVMADump(0, nil) },
		func() mechanism.Mechanism { return syslevel.NewCheckpointFork(0, nil) },
		func() mechanism.Mechanism { return userlevel.NewLibCkpt(0, nil, false) },
		func() mechanism.Mechanism { return userlevel.NewLibCkpt(0, nil, true) },
		func() mechanism.Mechanism { return userlevel.NewCondorStyle() },
	}
	return mks[rng.Intn(len(mks))]
}

// TestRandomizedRestartEquivalence is the repository's core guarantee
// under fuzzing: any workload, any mechanism, any number of checkpoints
// at any times, killed at any point — the restarted run's fingerprint
// matches an undisturbed run.
func TestRandomizedRestartEquivalence(t *testing.T) {
	const trials = 25
	for trial := 0; trial < trials; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%02d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(1000 + trial)))
			prog, iters := randomWorkload(rng)
			mk := randomMechanism(rng)

			// Reference run.
			ref := mk()
			refProg := ref.Prepare(prog)
			kr := newMachine("ref", refProg)
			if err := ref.Install(kr); err != nil {
				t.Fatal(err)
			}
			pr, err := kr.Spawn(refProg.Name())
			if err != nil {
				t.Fatal(err)
			}
			if err := ref.Setup(kr, pr); err != nil {
				t.Fatal(err)
			}
			workload.SetIterations(pr, iters)
			if !kr.RunUntilExit(pr, kr.Now().Add(10*simtime.Minute)) {
				t.Fatalf("reference stuck at pc=%d", pr.Regs().PC)
			}
			want := workload.Fingerprint(pr)

			// Checkpointed run: 1–3 checkpoints at random iteration points.
			m := mk()
			prepared := m.Prepare(prog)
			k := newMachine("src", prepared)
			if err := m.Install(k); err != nil {
				t.Fatal(err)
			}
			p, err := k.Spawn(prepared.Name())
			if err != nil {
				t.Fatal(err)
			}
			if err := m.Setup(k, p); err != nil {
				t.Fatal(err)
			}
			workload.SetIterations(p, iters)
			disk := storage.NewLocal("disk", costmodel.Default2005(), nil)

			nCkpts := 1 + rng.Intn(3)
			points := make([]uint64, nCkpts)
			for i := range points {
				points[i] = 1 + uint64(rng.Intn(int(iters)-2))
			}
			// Sort points ascending (simple insertion for tiny n).
			for i := 1; i < len(points); i++ {
				for j := i; j > 0 && points[j] < points[j-1]; j-- {
					points[j], points[j-1] = points[j-1], points[j]
				}
			}

			var leaf string
			taken := 0
			for _, pt := range points {
				for p.Regs().PC < pt && p.State != proc.StateZombie {
					k.RunFor(simtime.Millisecond)
				}
				if p.State == proc.StateZombie {
					break
				}
				tk, err := mechanism.Checkpoint(m, k, p, disk, nil)
				if err != nil {
					t.Fatalf("checkpoint at pc=%d: %v", p.Regs().PC, err)
				}
				leaf = tk.Img.ObjectName()
				taken++
			}
			if taken == 0 {
				t.Skip("workload finished before the first checkpoint point")
			}

			// Kill and restart from the last image.
			k.Exit(p, 137)
			k.Procs.Remove(p.PID)
			chain, err := checkpoint.LoadChain(disk, nil, leaf)
			if err != nil {
				t.Fatal(err)
			}
			p2, err := m.Restart(k, chain, true)
			if err != nil {
				t.Fatal(err)
			}
			if !k.RunUntilExit(p2, k.Now().Add(10*simtime.Minute)) {
				t.Fatalf("restarted run stuck at pc=%d", p2.Regs().PC)
			}
			if got := workload.Fingerprint(p2); got != want {
				t.Fatalf("mechanism %s, workload %s, %d ckpts at %v: fingerprint %#x, want %#x",
					m.Name(), prog.Name(), taken, points, got, want)
			}
		})
	}
}

// TestZAPVirtualPIDsNeverCollide restores two pods whose processes both
// believe they are PID 2 onto one machine: with real-PID preservation
// this would be impossible; with ZAP's virtual PIDs both run happily.
func TestZAPVirtualPIDsNeverCollide(t *testing.T) {
	prog := workload.ResourceUser{MiB: 1, Iterations: 3000, CheckPID: true}

	capture := func(name string) *checkpoint.Image {
		m := syslevel.NewZAP()
		prepared := m.Prepare(prog)
		k := newMachine(name, prepared)
		if err := m.Install(k); err != nil {
			t.Fatal(err)
		}
		p, err := k.Spawn(prepared.Name()) // pid 2 (the zap kthread is pid 1)
		if err != nil {
			t.Fatal(err)
		}
		for p.Regs().PC < 100 {
			k.RunFor(100 * simtime.Microsecond)
		}
		tk, err := mechanism.Checkpoint(m, k, p, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		return tk.Img
	}
	imgA := capture("srcA")
	imgB := capture("srcB")
	if imgA.PID != imgB.PID {
		t.Fatalf("test premise broken: pids %d vs %d", imgA.PID, imgB.PID)
	}

	mDst := syslevel.NewZAP()
	dst := newMachine("dst", mDst.Prepare(prog))
	if err := mDst.Install(dst); err != nil {
		t.Fatal(err)
	}
	pa, err := mDst.Restart(dst, []*checkpoint.Image{imgA}, true)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := mDst.Restart(dst, []*checkpoint.Image{imgB}, true)
	if err != nil {
		t.Fatalf("second pod restore collided: %v", err)
	}
	if pa.PID == pb.PID {
		t.Fatal("real PIDs collided")
	}
	if pa.VPID != imgA.PID || pb.VPID != imgB.PID {
		t.Fatalf("virtual PIDs not preserved: %d/%d", pa.VPID, pb.VPID)
	}
	// Both processes' internal PID checks pass (getpid == stored pid).
	for _, p := range []*proc.Process{pa, pb} {
		if !dst.RunUntilExit(p, dst.Now().Add(simtime.Minute)) {
			t.Fatal("pod stuck")
		}
		if p.ExitCode != workload.ExitOK {
			t.Fatalf("pod exit %d, want OK", p.ExitCode)
		}
	}
}

// TestRestartFromMiddleOfChain restores from an interior image of an
// incremental chain: the result must equal a reference run truncated at
// that image's progress, i.e. the chain prefix is itself a valid
// checkpoint.
func TestRestartFromMiddleOfChain(t *testing.T) {
	prog := workload.Sparse{MiB: 2, WriteFrac: 0.1, Seed: 77}
	const iters = 30

	m := syslevel.NewTICK()
	k := newMachine("src", prog)
	if err := m.Install(k); err != nil {
		t.Fatal(err)
	}
	p, _ := k.Spawn(prog.Name())
	workload.SetIterations(p, iters)
	disk := storage.NewLocal("disk", costmodel.Default2005(), nil)

	var names []string
	for _, pt := range []uint64{5, 10, 15} {
		for p.Regs().PC < pt && p.State != proc.StateZombie {
			k.RunFor(simtime.Millisecond)
		}
		tk, err := mechanism.Checkpoint(m, k, p, disk, nil)
		if err != nil {
			t.Fatal(err)
		}
		names = append(names, tk.Img.ObjectName())
	}

	// Restore from the middle image (a full + one delta): the process
	// resumes from iteration ~10 and must still produce the reference
	// final fingerprint.
	want := func() uint64 {
		kr := newMachine("ref", prog)
		pr, _ := kr.Spawn(prog.Name())
		workload.SetIterations(pr, iters)
		kr.RunUntilExit(pr, kr.Now().Add(simtime.Minute))
		return workload.Fingerprint(pr)
	}()

	for i, leaf := range names {
		chain, err := checkpoint.LoadChain(disk, nil, leaf)
		if err != nil {
			t.Fatal(err)
		}
		if len(chain) != i+1 {
			t.Fatalf("chain %d has %d images", i, len(chain))
		}
		dst := newMachine(fmt.Sprintf("dst%d", i), prog)
		p2, err := checkpoint.Restore(dst, chain, checkpoint.RestoreOptions{Enqueue: true})
		if err != nil {
			t.Fatal(err)
		}
		if !dst.RunUntilExit(p2, dst.Now().Add(simtime.Minute)) {
			t.Fatalf("restore from image %d stuck", i)
		}
		if got := workload.Fingerprint(p2); got != want {
			t.Fatalf("restore from image %d: fingerprint %#x, want %#x", i, got, want)
		}
	}
}

// TestTICKInterruptDeferralAblation measures the §4.1 claim that a
// mechanism to delay interrupts is needed to keep the kernel thread
// undisturbed: with heavy background interrupts, deferral makes captures
// faster and deterministic in cost.
func TestTICKInterruptDeferralAblation(t *testing.T) {
	captureTime := func(defer_ bool) simtime.Duration {
		cfg := kernel.DefaultConfig("k")
		cfg.InterruptRate = 50_000 // 50k interrupts/s
		cfg.InterruptHandler = 30 * simtime.Microsecond
		reg := kernel.NewRegistry()
		prog := workload.Dense{MiB: 8}
		reg.MustRegister(prog)
		k := kernel.New(cfg, costmodel.Default2005(), reg)
		m := syslevel.NewTICK()
		m.DeferInterrupts = defer_
		if err := m.Install(k); err != nil {
			t.Fatal(err)
		}
		p, _ := k.Spawn(prog.Name())
		workload.SetIterations(p, 1<<30)
		k.RunFor(5 * simtime.Millisecond)
		tk, err := mechanism.Checkpoint(m, k, p, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		return tk.CaptureTime()
	}
	with := captureTime(true)
	without := captureTime(false)
	if without <= with {
		t.Fatalf("interrupt deferral did not help: with %v, without %v", with, without)
	}
}

// TestCheckpointUnderDiskFailure: storage dies mid-sequence; the
// mechanism reports the error and the process keeps running unharmed.
func TestCheckpointUnderDiskFailure(t *testing.T) {
	prog := workload.Dense{MiB: 2}
	k := newMachine("k", prog)
	m := syslevel.NewCRAK()
	if err := m.Install(k); err != nil {
		t.Fatal(err)
	}
	p, _ := k.Spawn(prog.Name())
	workload.SetIterations(p, 1<<30)
	k.RunFor(simtime.Millisecond)

	alive := true
	disk := storage.NewLocal("flaky", costmodel.Default2005(), func() bool { return alive })
	if _, err := mechanism.Checkpoint(m, k, p, disk, nil); err != nil {
		t.Fatal(err)
	}
	alive = false
	tk, err := m.Request(k, p, disk, nil)
	if err != nil {
		t.Fatal(err)
	}
	mechanism.WaitTicket(k, tk, simtime.Minute)
	if tk.Err == nil {
		t.Fatal("checkpoint to dead disk succeeded")
	}
	// The application is unharmed and still progressing.
	pc := p.Regs().PC
	k.RunFor(5 * simtime.Millisecond)
	if p.Regs().PC <= pc {
		t.Fatal("application stalled after failed checkpoint")
	}
}

// sleeperApp computes, sleeps on a timer (an "external event"), and
// computes again — the §4.1 "invalid state" scenario: a checkpoint taken
// while the process waits for an event must not strand the restored
// process waiting for an event that will never arrive.
type sleeperApp struct{}

func (sleeperApp) Name() string                   { return "sleeper-app" }
func (sleeperApp) Init(ctx *kernel.Context) error { return nil }
func (sleeperApp) Step(ctx *kernel.Context) (kernel.Status, error) {
	r := ctx.Regs()
	switch r.PC {
	case 0:
		r.G[3] = 0x1111
		r.PC = 1
		ctx.BlockFor(20*simtime.Millisecond, "device wait")
		return kernel.StatusBlocked, nil
	case 1:
		// Runs after the wait completes (or after a restore re-executes
		// this phase: re-arming the wait is part of the state machine).
		r.G[3] = r.G[3]*31 + 0x2222
		r.PC = 2
		ctx.Exit(0)
		return kernel.StatusExited, nil
	default:
		ctx.Exit(1)
		return kernel.StatusExited, nil
	}
}

// TestCheckpointOfBlockedProcess captures a process mid-sleep with a
// kernel thread (which, unlike the signal mechanisms, can reach a blocked
// process) and restarts it on a fresh machine where the original timer
// event does not exist. The restored process must still finish: phase
// state lives in registers, so the restored run re-enters phase 1
// directly — the simulation's answer to the paper's unsaved-event hazard.
func TestCheckpointOfBlockedProcess(t *testing.T) {
	prog := sleeperApp{}
	k := newMachine("src", prog)
	m := syslevel.NewCRAK()
	if err := m.Install(k); err != nil {
		t.Fatal(err)
	}
	p, _ := k.Spawn(prog.Name())
	k.RunFor(5 * simtime.Millisecond)
	if p.State != proc.StateBlocked {
		t.Fatalf("process state %v, want blocked mid-sleep", p.State)
	}
	tk, err := mechanism.Checkpoint(m, k, p, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tk.Img.Threads[0].Regs.PC != 1 {
		t.Fatalf("captured at phase %d, want 1 (inside the wait)", tk.Img.Threads[0].Regs.PC)
	}

	// Restore on a machine with no trace of the timer event.
	dst := newMachine("dst", prog)
	p2, err := m.Restart(dst, []*checkpoint.Image{tk.Img}, true)
	if err != nil {
		t.Fatal(err)
	}
	if !dst.RunUntilExit(p2, dst.Now().Add(simtime.Minute)) {
		t.Fatal("restored process stranded waiting for a lost event")
	}
	if p2.ExitCode != 0 || p2.Regs().G[3] != 0x1111*31+0x2222 {
		t.Fatalf("exit %d result %#x", p2.ExitCode, p2.Regs().G[3])
	}

	// Meanwhile the original, never killed, also completes normally.
	if !k.RunUntilExit(p, k.Now().Add(simtime.Minute)) {
		t.Fatal("original stuck")
	}
	if p.Regs().G[3] != p2.Regs().G[3] {
		t.Fatal("restored result differs from original")
	}
}
