package taxonomy

import (
	"strings"
	"testing"

	"repro/internal/storage"
)

func TestPaperTable1HasTwelveRows(t *testing.T) {
	rows := PaperTable1()
	if len(rows) != 12 {
		t.Fatalf("Table 1 rows = %d, want 12", len(rows))
	}
	names := map[string]bool{}
	for _, r := range rows {
		if names[r.Name] {
			t.Fatalf("duplicate row %q", r.Name)
		}
		names[r.Name] = true
		// The paper's table: no system implements incremental checkpointing.
		if r.Incremental {
			t.Fatalf("%s: paper says incremental=no for all rows", r.Name)
		}
	}
	for _, want := range []string{"VMADump", "BPROC", "EPCKPT", "CRAK", "UCLiK", "CHPOX", "ZAP", "BLCR", "LAM/MPI", "PsncR/C", "Software Suspend", "Checkpoint"} {
		if !names[want] {
			t.Fatalf("missing row %q", want)
		}
	}
}

func TestRowRendering(t *testing.T) {
	f := Features{
		Name:        "CRAK",
		Transparent: true,
		Storage:     []storage.Kind{storage.KindRemote, storage.KindLocal},
		Initiation:  InitUser, KernelModule: true,
	}
	r := f.Row()
	want := [6]string{"CRAK", "no", "yes", "local,remote", "user", "yes"}
	if r != want {
		t.Fatalf("Row = %v, want %v", r, want)
	}
	if (Features{Name: "ZAP"}).StorageString() != "none" {
		t.Fatal("empty storage should render as none")
	}
}

func TestRenderTableContainsAllRows(t *testing.T) {
	out := RenderTable(PaperTable1())
	for _, name := range []string{"VMADump", "Software Suspend", "Stable storage"} {
		if !strings.Contains(out, name) {
			t.Fatalf("rendered table missing %q:\n%s", name, out)
		}
	}
	if lines := strings.Count(out, "\n"); lines != 14 { // header + rule + 12 rows
		t.Fatalf("table has %d lines, want 14", lines)
	}
}

func TestDiffTableExactMatch(t *testing.T) {
	if diffs := DiffTable(PaperTable1()); len(diffs) != 0 {
		t.Fatalf("self-diff produced %v", diffs)
	}
}

func TestDiffTableDetectsMismatch(t *testing.T) {
	rows := PaperTable1()
	rows[0].Transparent = !rows[0].Transparent
	diffs := DiffTable(rows)
	if len(diffs) != 1 || !strings.Contains(diffs[0], "VMADump") {
		t.Fatalf("diffs = %v", diffs)
	}
}

func TestDiffTableDetectsMissing(t *testing.T) {
	rows := PaperTable1()[1:]
	diffs := DiffTable(rows)
	found := false
	for _, d := range diffs {
		if strings.Contains(d, "missing") && strings.Contains(d, "VMADump") {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing row not reported: %v", diffs)
	}
}

func TestDiffTableIgnoresExtensions(t *testing.T) {
	rows := append(PaperTable1(), Features{Name: "PAL-incremental", Incremental: true})
	if diffs := DiffTable(rows); len(diffs) != 0 {
		t.Fatalf("extension row produced diffs: %v", diffs)
	}
}

func TestFigure1Structure(t *testing.T) {
	root := Figure1()
	if len(root.Children) != 2 {
		t.Fatal("root must split user-level/system-level")
	}
	leaves := Leaves(root)
	if len(leaves) < 8 {
		t.Fatalf("only %d leaves", len(leaves))
	}
	out := RenderTree(root)
	for _, want := range []string{"user-level", "system-level", "kernel thread", "hardware", "ReVive", "BLCR", "LD_PRELOAD"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered tree missing %q:\n%s", want, out)
		}
	}
}

func TestStringForms(t *testing.T) {
	if UserLevel.String() != "user-level" || SystemLevel.String() != "system-level" {
		t.Fatal("Context strings")
	}
	if InitUser.String() != "user" || InitAutomatic.String() != "automatic" {
		t.Fatal("Initiation strings")
	}
	for a := AgentLibrary; a <= AgentHardware; a++ {
		if a.String() == "?" {
			t.Fatalf("agent %d has no name", a)
		}
	}
}
