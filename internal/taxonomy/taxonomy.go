// Package taxonomy models Figure 1 (the classification of checkpoint/
// restart implementations) and Table 1 (the feature matrix of the twelve
// surveyed systems). The survey binary regenerates both: the figure from
// the tree below, the table by probing the live mechanism implementations
// and diffing against the paper's published rows.
package taxonomy

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/storage"
)

// Context is the coarsest dimension of Figure 1.
type Context uint8

// Contexts.
const (
	UserLevel Context = iota
	SystemLevel
)

func (c Context) String() string {
	if c == SystemLevel {
		return "system-level"
	}
	return "user-level"
}

// Agent is the second dimension: what provides the C/R functionality.
type Agent uint8

// Agents, following Figure 1's branches.
const (
	AgentLibrary      Agent = iota // checkpointing library linked into the app
	AgentPrecompiler               // source-to-source instrumentation
	AgentUserSignal                // user-level signal handler (SIGALRM/SIGUSR*)
	AgentPreload                   // LD_PRELOAD interposition
	AgentSyscall                   // new system call in the kernel
	AgentKernelSignal              // new kernel signal, default action in kernel mode
	AgentKernelThread              // kernel thread (+ /dev ioctl or /proc interface)
	AgentHardware                  // purpose-built hardware (directory/caches)
)

func (a Agent) String() string {
	switch a {
	case AgentLibrary:
		return "library"
	case AgentPrecompiler:
		return "pre-compiler"
	case AgentUserSignal:
		return "user signal handler"
	case AgentPreload:
		return "LD_PRELOAD"
	case AgentSyscall:
		return "system call"
	case AgentKernelSignal:
		return "kernel signal"
	case AgentKernelThread:
		return "kernel thread"
	case AgentHardware:
		return "hardware"
	}
	return "?"
}

// Initiation is Table 1's "Initiation" column: who starts a checkpoint.
type Initiation uint8

// Initiation kinds.
const (
	InitAutomatic Initiation = iota // the application/system checkpoints itself
	InitUser                        // an operator/tool initiates (kill, ioctl, /proc)
)

func (i Initiation) String() string {
	if i == InitUser {
		return "user"
	}
	return "automatic"
}

// Features is one row of the (extended) Table 1, plus the classification
// dimensions of Figure 1 and the extra capabilities §4.1 discusses.
type Features struct {
	Name    string
	Context Context
	Agent   Agent

	// The five published Table 1 columns.
	Incremental  bool
	Transparent  bool
	Storage      []storage.Kind // empty = "none"
	Initiation   Initiation
	KernelModule bool

	// Additional capabilities discussed in the text.
	Multithreaded        bool // BLCR, libtckpt, Checkpoint
	ParallelApps         bool // LAM/MPI, CoCheck-class
	VirtualizesResources bool // ZAP pods
	PreservesPID         bool // UCLiK, ZAP
	RestoresDeletedFiles bool // UCLiK
	ForkConsistency      bool // Checkpoint [5]
	WholeMachine         bool // Software Suspend
}

// StorageString renders the storage column as in the paper.
func (f Features) StorageString() string {
	if len(f.Storage) == 0 {
		return "none"
	}
	parts := make([]string, 0, len(f.Storage))
	for _, s := range f.Storage {
		parts = append(parts, s.String())
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

func yn(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

// Row renders the five published columns.
func (f Features) Row() [6]string {
	return [6]string{f.Name, yn(f.Incremental), yn(f.Transparent), f.StorageString(), f.Initiation.String(), yn(f.KernelModule)}
}

// PaperTable1 returns the twelve rows exactly as published (Table 1).
func PaperTable1() []Features {
	return []Features{
		{Name: "VMADump", Context: SystemLevel, Agent: AgentSyscall, Storage: []storage.Kind{storage.KindLocal, storage.KindRemote}, Initiation: InitAutomatic},
		{Name: "BPROC", Context: SystemLevel, Agent: AgentSyscall, Initiation: InitAutomatic},
		{Name: "EPCKPT", Context: SystemLevel, Agent: AgentSyscall, Transparent: true, Storage: []storage.Kind{storage.KindLocal, storage.KindRemote}, Initiation: InitUser},
		{Name: "CRAK", Context: SystemLevel, Agent: AgentKernelThread, Transparent: true, Storage: []storage.Kind{storage.KindLocal, storage.KindRemote}, Initiation: InitUser, KernelModule: true},
		{Name: "UCLiK", Context: SystemLevel, Agent: AgentKernelThread, Transparent: true, Storage: []storage.Kind{storage.KindLocal}, Initiation: InitUser, KernelModule: true, PreservesPID: true, RestoresDeletedFiles: true},
		{Name: "CHPOX", Context: SystemLevel, Agent: AgentKernelSignal, Transparent: true, Storage: []storage.Kind{storage.KindLocal}, Initiation: InitUser, KernelModule: true},
		{Name: "ZAP", Context: SystemLevel, Agent: AgentKernelThread, Transparent: true, Initiation: InitUser, KernelModule: true, VirtualizesResources: true, PreservesPID: true},
		{Name: "BLCR", Context: SystemLevel, Agent: AgentKernelThread, Storage: []storage.Kind{storage.KindLocal, storage.KindRemote}, Initiation: InitUser, KernelModule: true, Multithreaded: true},
		{Name: "LAM/MPI", Context: SystemLevel, Agent: AgentKernelThread, Storage: []storage.Kind{storage.KindLocal, storage.KindRemote}, Initiation: InitUser, KernelModule: true, Multithreaded: true, ParallelApps: true},
		{Name: "PsncR/C", Context: SystemLevel, Agent: AgentKernelThread, Transparent: true, Storage: []storage.Kind{storage.KindLocal}, Initiation: InitUser, KernelModule: true},
		{Name: "Software Suspend", Context: SystemLevel, Agent: AgentKernelSignal, Transparent: true, Storage: []storage.Kind{storage.KindLocal}, Initiation: InitUser, WholeMachine: true},
		{Name: "Checkpoint", Context: SystemLevel, Agent: AgentSyscall, Storage: []storage.Kind{storage.KindLocal}, Initiation: InitAutomatic, Multithreaded: true, ForkConsistency: true},
	}
}

// RenderTable renders rows in the paper's Table 1 layout.
func RenderTable(rows []Features) string {
	headers := [6]string{"Name", "Incremental", "Transparency", "Stable storage", "Initiation", "Kernel module"}
	width := [6]int{}
	for i, h := range headers {
		width[i] = len(h)
	}
	cells := make([][6]string, 0, len(rows))
	for _, f := range rows {
		r := f.Row()
		for i, c := range r {
			if len(c) > width[i] {
				width[i] = len(c)
			}
		}
		cells = append(cells, r)
	}
	var b strings.Builder
	writeRow := func(r [6]string) {
		for i, c := range r {
			fmt.Fprintf(&b, "%-*s", width[i]+2, c)
		}
		b.WriteString("\n")
	}
	writeRow(headers)
	b.WriteString(strings.Repeat("-", sum(width[:])+12) + "\n")
	for _, r := range cells {
		writeRow(r)
	}
	return b.String()
}

func sum(xs []int) int {
	n := 0
	for _, x := range xs {
		n += x
	}
	return n
}

// DiffTable compares probed rows against the paper's, returning one
// message per mismatch (empty = exact reproduction).
func DiffTable(probed []Features) []string {
	want := map[string][6]string{}
	for _, f := range PaperTable1() {
		want[f.Name] = f.Row()
	}
	var diffs []string
	seen := map[string]bool{}
	for _, f := range probed {
		w, ok := want[f.Name]
		if !ok {
			continue // extensions beyond the paper's table are not diffs
		}
		seen[f.Name] = true
		g := f.Row()
		for i := 1; i < 6; i++ {
			if g[i] != w[i] {
				col := [6]string{"", "incremental", "transparency", "storage", "initiation", "module"}[i]
				diffs = append(diffs, fmt.Sprintf("%s: %s = %q, paper says %q", f.Name, col, g[i], w[i]))
			}
		}
	}
	for name := range want {
		if !seen[name] {
			diffs = append(diffs, fmt.Sprintf("%s: missing from probe", name))
		}
	}
	sort.Strings(diffs)
	return diffs
}

// Node is one vertex of the Figure 1 classification tree.
type Node struct {
	Label    string
	Systems  []string // example systems at this leaf
	Children []*Node
}

// Figure1 returns the classification tree of Figure 1.
func Figure1() *Node {
	return &Node{
		Label: "Checkpoint/restart implementations",
		Children: []*Node{
			{
				Label: "user-level",
				Children: []*Node{
					{Label: "source code / checkpointing library", Systems: []string{"libckpt", "libckp", "Condor", "libtckpt", "CLIP", "CoCheck"}},
					{Label: "pre-compiler", Systems: []string{"CCIFT"}},
					{Label: "signal handler (SIGALRM, SIGUSR*)", Systems: []string{"libckpt", "Esky", "Condor"}},
					{Label: "LD_PRELOAD interposition", Systems: []string{"Condor"}},
				},
			},
			{
				Label: "system-level",
				Children: []*Node{
					{
						Label: "operating system",
						Children: []*Node{
							{Label: "system call", Systems: []string{"VMADump", "BProc", "EPCKPT", "Checkpoint"}},
							{Label: "kernel-mode signal handler", Systems: []string{"CHPOX", "Software Suspend", "EPCKPT"}},
							{Label: "kernel thread (/dev ioctl, /proc, syscall)", Systems: []string{"CRAK", "ZAP", "UCLiK", "BLCR", "LAM/MPI", "PsncR/C"}},
						},
					},
					{
						Label: "hardware",
						Children: []*Node{
							{Label: "directory controller logging", Systems: []string{"ReVive"}},
							{Label: "cache checkpoint log buffers", Systems: []string{"SafetyNet"}},
						},
					},
				},
			},
		},
	}
}

// RenderTree renders the tree as ASCII art.
func RenderTree(n *Node) string {
	var b strings.Builder
	var walk func(n *Node, prefix string, last bool, root bool)
	walk = func(n *Node, prefix string, last, root bool) {
		label := n.Label
		if len(n.Systems) > 0 {
			label += "  [" + strings.Join(n.Systems, ", ") + "]"
		}
		if root {
			b.WriteString(label + "\n")
		} else {
			branch := "├── "
			if last {
				branch = "└── "
			}
			b.WriteString(prefix + branch + label + "\n")
		}
		childPrefix := prefix
		if !root {
			if last {
				childPrefix += "    "
			} else {
				childPrefix += "│   "
			}
		}
		for i, c := range n.Children {
			walk(c, childPrefix, i == len(n.Children)-1, false)
		}
	}
	walk(n, "", true, true)
	return b.String()
}

// Leaves returns all leaf labels of the tree (used to verify coverage:
// every taxonomy leaf has at least one implementation in this repo).
func Leaves(n *Node) []string {
	if len(n.Children) == 0 {
		return []string{n.Label}
	}
	var out []string
	for _, c := range n.Children {
		out = append(out, Leaves(c)...)
	}
	return out
}
