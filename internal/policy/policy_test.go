package policy

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/simtime"
	"repro/internal/trace"
)

func TestValidateTypedErrors(t *testing.T) {
	ms := simtime.Millisecond
	cases := []struct {
		name string
		spec Spec
		want error
	}{
		{"unknown strategy", Spec{Strategy: "often"}, ErrUnknownStrategy},
		{"unknown formula", Spec{Formula: "euler"}, ErrUnknownFormula},
		{"unknown content", Spec{Content: "most"}, ErrUnknownContent},
		{"negative interval", Spec{Interval: -ms}, ErrNonPositiveInterval},
		{"negative prior", Spec{PriorMTBF: -ms}, ErrNegativeParam},
		{"negative cost", Spec{CkptCost: -ms}, ErrNegativeParam},
		{"negative min", Spec{MinInterval: -ms}, ErrNegativeParam},
		{"negative max", Spec{MaxInterval: -ms}, ErrNegativeParam},
		{"negative streak", Spec{DeadStreak: -1}, ErrNegativeParam},
		{"inverted clamp", Spec{MinInterval: 2 * ms, MaxInterval: ms}, ErrClampInverted},
	}
	for _, tc := range cases {
		if err := tc.spec.Validate(); !errors.Is(err, tc.want) {
			t.Errorf("%s: Validate = %v, want errors.Is %v", tc.name, err, tc.want)
		}
	}
	for _, good := range []Spec{
		{},
		Fixed(ms),
		YoungDaly(ms),
		YoungDaly(ms).Live(),
		AdaptiveYoung(10 * ms),
		{Strategy: StrategyYoungDaly, Formula: FormulaDaly, Interval: ms,
			MinInterval: ms / 2, MaxInterval: 4 * ms, Content: ContentLive, DeadStreak: 3},
	} {
		if err := good.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", good, err)
		}
	}
}

func TestConstructorsAndAccessors(t *testing.T) {
	ms := simtime.Millisecond
	if s := Fixed(5 * ms); s.Strategy != StrategyFixed || s.Interval != 5*ms {
		t.Errorf("Fixed: %+v", s)
	}
	if s := YoungDaly(5 * ms); s.Strategy != StrategyYoungDaly || s.Interval != 5*ms {
		t.Errorf("YoungDaly: %+v", s)
	}
	if s := AdaptiveYoung(7 * ms); s.Strategy != StrategyAdaptive || s.CkptCost != 7*ms || s.Interval != 0 {
		t.Errorf("AdaptiveYoung: %+v", s)
	}
	if s := (Spec{}); s.Enabled() || s.Liveness() {
		t.Error("zero spec should be disabled, content-all")
	}
	if s := Fixed(ms).Live(); !s.Enabled() || !s.Liveness() {
		t.Error("Fixed().Live() should be enabled with liveness content")
	}
}

func TestNormalizedDefaults(t *testing.T) {
	n := YoungDaly(16 * simtime.Millisecond).Normalized()
	if n.Formula != FormulaYoung {
		t.Errorf("Formula = %q", n.Formula)
	}
	if n.PriorMTBF != simtime.Hour {
		t.Errorf("PriorMTBF = %v", n.PriorMTBF)
	}
	if n.CkptCost != 10*simtime.Millisecond {
		t.Errorf("CkptCost = %v", n.CkptCost)
	}
	if n.MinInterval != simtime.Millisecond || n.MaxInterval != 256*simtime.Millisecond {
		t.Errorf("clamps = [%v, %v], want [1ms, 256ms]", n.MinInterval, n.MaxInterval)
	}
	if n.DeadStreak != 2 {
		t.Errorf("DeadStreak = %d", n.DeadStreak)
	}
	// Explicit values survive normalization.
	e := Spec{Strategy: StrategyYoungDaly, Interval: 16 * simtime.Millisecond,
		MinInterval: 2 * simtime.Millisecond, DeadStreak: 5}.Normalized()
	if e.MinInterval != 2*simtime.Millisecond || e.DeadStreak != 5 {
		t.Errorf("Normalized stomped explicit values: %+v", e)
	}
}

// TestYoungMatchesFormula pins Young against the closed form on random
// inputs; Daly must stay within Young's neighbourhood and never exceed
// the MTBF regime it refines.
func TestYoungMatchesFormula(t *testing.T) {
	f := func(costMS, mtbfMS uint16) bool {
		cost := simtime.Duration(costMS) * simtime.Millisecond
		mtbf := simtime.Duration(mtbfMS) * simtime.Millisecond
		y := Young(cost, mtbf)
		if cost <= 0 || mtbf <= 0 {
			return y == mtbf
		}
		want := math.Sqrt(2 * float64(cost) * float64(mtbf))
		return math.Abs(float64(y)-want) <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestIntervalForProperties: fixed ignores measurements entirely;
// youngdaly always lands inside its clamp; adaptive falls back to the
// base when the computed optimum is wild.
func TestIntervalForProperties(t *testing.T) {
	ms := simtime.Millisecond
	fixed := func(costMS, mtbfMS uint16) bool {
		return Fixed(9*ms).IntervalFor(simtime.Duration(costMS)*ms, simtime.Duration(mtbfMS)*ms) == 9*ms
	}
	if err := quick.Check(fixed, nil); err != nil {
		t.Errorf("fixed: %v", err)
	}
	yd := func(costMS, mtbfMS uint16) bool {
		n := YoungDaly(16 * ms).Normalized()
		iv := n.IntervalFor(simtime.Duration(costMS)*ms, simtime.Duration(mtbfMS)*ms)
		return iv >= n.MinInterval && iv <= n.MaxInterval
	}
	if err := quick.Check(yd, nil); err != nil {
		t.Errorf("youngdaly clamp: %v", err)
	}
	ad := AdaptiveYoung(0)
	ad.Interval = 10 * ms
	if got := ad.IntervalFor(0, 0); got != 10*ms {
		t.Errorf("adaptive wild-estimate fallback = %v, want base 10ms", got)
	}
	if got := ad.IntervalFor(ms, simtime.Hour); got != 10*ms {
		t.Errorf("adaptive huge-optimum fallback = %v, want base 10ms", got)
	}
	if got := ad.IntervalFor(ms, 50*ms); got != Young(ms, 50*ms) {
		t.Errorf("adaptive in-range = %v, want Young %v", got, Young(ms, 50*ms))
	}
	// Daly refines below Young when the cost is non-negligible.
	daly := Spec{Strategy: StrategyYoungDaly, Interval: 16 * ms, Formula: FormulaDaly,
		MinInterval: 1, MaxInterval: simtime.Hour}
	if d, y := daly.IntervalFor(10*ms, 100*ms), Young(10*ms, 100*ms); d >= y {
		t.Errorf("Daly %v not below Young %v at cost/MTBF = 0.1", d, y)
	}
}

// TestMTBFEstimatorExact checks the maximum-likelihood estimate and the
// prior fallback exactly.
func TestMTBFEstimatorExact(t *testing.T) {
	e := NewMTBFEstimator(simtime.Hour)
	if e.Estimate() != simtime.Hour {
		t.Fatalf("prior = %v", e.Estimate())
	}
	e.ObserveUptime(30 * simtime.Second)
	if e.Estimate() != simtime.Hour {
		t.Fatal("uptime alone must not move the estimate off the prior")
	}
	e.ObserveFailure()
	if e.Estimate() != 30*simtime.Second {
		t.Fatalf("after 1 failure / 30s uptime: %v", e.Estimate())
	}
	e.ObserveUptime(90 * simtime.Second)
	e.ObserveFailure()
	if e.Estimate() != simtime.Minute {
		t.Fatalf("after 2 failures / 120s uptime: %v", e.Estimate())
	}
	if e.Failures() != 2 {
		t.Fatalf("Failures = %d", e.Failures())
	}
}

// TestMTBFEstimatorConvergence: feeding a constant inter-failure gap
// must converge the estimate to that gap, for any gap and any count.
func TestMTBFEstimatorConvergence(t *testing.T) {
	f := func(gapMS uint16, n uint8) bool {
		gap := simtime.Duration(gapMS%5000+1) * simtime.Millisecond
		rounds := int(n%50) + 1
		e := NewMTBFEstimator(simtime.Hour)
		for i := 0; i < rounds; i++ {
			e.ObserveUptime(gap)
			e.ObserveFailure()
		}
		return e.Estimate() == gap
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEngineRequiresBaseInterval(t *testing.T) {
	if _, err := NewEngine(Spec{Strategy: StrategyYoungDaly}, nil, nil); !errors.Is(err, ErrNonPositiveInterval) {
		t.Errorf("no base interval: %v", err)
	}
	if _, err := NewEngine(Spec{Strategy: "often", Interval: simtime.Millisecond}, nil, nil); !errors.Is(err, ErrUnknownStrategy) {
		t.Errorf("bad strategy: %v", err)
	}
}

// TestEngineEventDriven is the single-observation audit at engine
// level: the youngdaly cadence moves only on observation events, and
// the policy.interval histogram gets exactly one sample per recompute
// no matter how many times Interval() is consulted between events.
func TestEngineEventDriven(t *testing.T) {
	ms := simtime.Millisecond
	m := trace.NewMetrics()
	eng, err := NewEngine(YoungDaly(16*ms), nil, m)
	if err != nil {
		t.Fatal(err)
	}
	// Pre-failure: cadence is the base, however often it is consulted.
	for i := 0; i < 1000; i++ {
		if eng.Interval() != 16*ms {
			t.Fatalf("pre-failure cadence %v, want base 16ms", eng.Interval())
		}
	}
	if eng.Recomputes() != 0 {
		t.Fatalf("consultation alone recomputed %d times", eng.Recomputes())
	}
	// A capture-cost observation recomputes, but with no failures the
	// cadence stays at the base (the prior is not a measurement).
	eng.ObserveCaptureCost(2 * ms)
	if eng.Recomputes() != 1 || eng.Interval() != 16*ms {
		t.Fatalf("after cost obs: recomputes=%d interval=%v", eng.Recomputes(), eng.Interval())
	}
	// A failure makes the estimate real and the cadence move.
	eng.ObserveUptime(50 * ms)
	eng.ObserveFailure()
	if eng.Recomputes() != 2 {
		t.Fatalf("recomputes = %d", eng.Recomputes())
	}
	want := YoungDaly(16*ms).Normalized().IntervalFor(2*ms, 50*ms)
	if eng.Interval() != want {
		t.Fatalf("post-failure cadence %v, want %v", eng.Interval(), want)
	}
	// Exactly one histogram observation per recompute.
	if n := m.Hist("policy.interval").N(); n != 2 {
		t.Fatalf("policy.interval observations = %d, want 2", n)
	}
	if c := m.Counters.Get("policy.recompute"); c != 2 {
		t.Fatalf("policy.recompute = %d, want 2", c)
	}
	// EWMA: quarter weight on the new sample.
	eng.ObserveCaptureCost(6 * ms)
	if eng.CaptureCost() != 3*ms {
		t.Fatalf("EWMA cost = %v, want 3ms", eng.CaptureCost())
	}
}
