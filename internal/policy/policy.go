// Package policy decides *when* a job checkpoints and *what* a delta
// carries. The paper's §5 direction is that both should follow from
// measurement, not configuration: the optimal cadence is a function of
// the measured capture cost and the observed failure rate (Young's
// first-order optimum, Daly's refinement), and the optimal content is
// the live state only — pages that will be overwritten before they are
// ever read again are dead weight in a delta.
//
// The public surface is one validated Spec consumed by
// cluster.NewSupervisor, replacing the scattered Interval/Adaptive
// knobs: a strategy table in the style of the checkpoint/restart config
// surfaces surveyed in SNIPPETS.md #1 (strategy + per-strategy params),
// plus a content policy that turns on liveness-driven delta exclusion.
// The Engine in engine.go is the runtime half: it owns the online MTBF
// estimator, tracks measured capture cost, and recomputes the live
// cadence on observation events (never per pump tick).
package policy

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/simtime"
)

// Strategy selects how the checkpoint cadence is chosen.
type Strategy string

// The strategy table. "fixed" is the classic configured interval;
// "youngdaly" recomputes the Young/Daly optimum from measurements on
// observation events and feeds it to agents as a live cadence;
// "adaptive" is the legacy per-consultation Young recompute kept for
// compatibility with the pre-policy Supervisor behaviour.
const (
	StrategyFixed     Strategy = "fixed"
	StrategyYoungDaly Strategy = "youngdaly"
	StrategyAdaptive  Strategy = "adaptive"
)

// Formula picks the interval optimum used by the youngdaly strategy.
type Formula string

// Formulas. The zero value means Young's √(2δM).
const (
	FormulaYoung Formula = "young"
	FormulaDaly  Formula = "daly"
)

// Content selects what a delta capture carries.
type Content string

// Content policies. The zero value ships every dirty page; ContentLive
// arms the liveness tracker and excludes dead pages (written again
// before ever being read) from deltas.
const (
	ContentAll  Content = "all"
	ContentLive Content = "live"
)

// Typed validation errors, so callers can errors.Is instead of matching
// message text.
var (
	ErrUnknownStrategy     = errors.New("policy: unknown strategy")
	ErrUnknownFormula      = errors.New("policy: unknown formula")
	ErrUnknownContent      = errors.New("policy: unknown content policy")
	ErrNonPositiveInterval = errors.New("policy: non-positive interval")
	ErrNegativeParam       = errors.New("policy: negative parameter")
	ErrClampInverted       = errors.New("policy: min interval exceeds max")
)

// Spec is the unified checkpoint policy: one strategy plus its
// parameters, and a content policy for deltas. The zero value is not a
// valid supervisor policy (an interval or strategy must be set); use
// the constructors or fill the fields and let Validate judge it.
type Spec struct {
	// Strategy selects the cadence rule. Empty defaults to fixed.
	Strategy Strategy `json:"strategy,omitempty"`

	// Interval is the configured cadence for fixed, and the base
	// cadence for youngdaly/adaptive: the rate used before any failure
	// has been observed, and the anchor for the default clamps.
	Interval simtime.Duration `json:"interval,omitempty"`

	// Formula picks Young or Daly for youngdaly. Default young.
	Formula Formula `json:"formula,omitempty"`

	// PriorMTBF seeds the estimator before the first observed failure.
	// Default one simulated hour (the legacy supervisor prior).
	PriorMTBF simtime.Duration `json:"prior_mtbf,omitempty"`

	// CkptCost seeds the capture-cost estimate before the first
	// measured capture. Default 10ms (the legacy adaptive fallback).
	CkptCost simtime.Duration `json:"ckpt_cost,omitempty"`

	// MinInterval/MaxInterval clamp the computed youngdaly cadence.
	// Defaults Interval/16 and Interval*16, so a wild early estimate
	// can neither storm the storage tier nor stop checkpointing.
	MinInterval simtime.Duration `json:"min_interval,omitempty"`
	MaxInterval simtime.Duration `json:"max_interval,omitempty"`

	// Content selects delta content: everything dirty (default) or
	// live pages only.
	Content Content `json:"content,omitempty"`

	// DeadStreak is how many consecutive epochs a page must be
	// overwritten-before-read before the liveness tracker excludes it
	// from deltas. Default 2, so a page that alternates roles (read one
	// epoch, overwritten the next — a stencil's two grids) never
	// qualifies.
	DeadStreak int `json:"dead_streak,omitempty"`
}

// Fixed returns the classic configured-interval policy.
func Fixed(d simtime.Duration) Spec { return Spec{Strategy: StrategyFixed, Interval: d} }

// YoungDaly returns the measurement-driven policy: base cadence d until
// the first failure is observed, then the Young optimum recomputed from
// the measured capture cost and the online MTBF estimate.
func YoungDaly(base simtime.Duration) Spec {
	return Spec{Strategy: StrategyYoungDaly, Interval: base}
}

// AdaptiveYoung returns the legacy adaptive policy: Young's optimum
// recomputed on every consultation from the given capture cost and the
// estimator's current MTBF, unclamped when no base interval is set.
func AdaptiveYoung(ckptCost simtime.Duration) Spec {
	return Spec{Strategy: StrategyAdaptive, CkptCost: ckptCost}
}

// Live returns a copy of the spec with liveness-driven delta content on.
func (s Spec) Live() Spec { s.Content = ContentLive; return s }

// Enabled reports whether the spec asks for any checkpointing at all.
// The analytic model treats a zero spec as "never checkpoint".
func (s Spec) Enabled() bool { return s.Strategy != "" || s.Interval > 0 }

// Liveness reports whether delta content is liveness-driven.
func (s Spec) Liveness() bool { return s.Content == ContentLive }

// Normalized returns the spec with every defaulted field filled in.
func (s Spec) Normalized() Spec {
	if s.Strategy == "" {
		s.Strategy = StrategyFixed
	}
	if s.Formula == "" {
		s.Formula = FormulaYoung
	}
	if s.PriorMTBF == 0 {
		s.PriorMTBF = simtime.Hour
	}
	if s.CkptCost == 0 {
		s.CkptCost = 10 * simtime.Millisecond
	}
	if s.Strategy == StrategyYoungDaly && s.Interval > 0 {
		if s.MinInterval == 0 {
			s.MinInterval = s.Interval / 16
		}
		if s.MaxInterval == 0 {
			s.MaxInterval = s.Interval * 16
		}
	}
	if s.DeadStreak == 0 {
		s.DeadStreak = 2
	}
	return s
}

// Validate judges the spec. It does not require Interval > 0 — the
// analytic model runs adaptive specs with no base — but every field
// that is set must be coherent. NewEngine (and so cluster.NewSupervisor)
// additionally requires a positive base interval.
func (s Spec) Validate() error {
	switch s.Strategy {
	case "", StrategyFixed, StrategyYoungDaly, StrategyAdaptive:
	default:
		return fmt.Errorf("%w %q", ErrUnknownStrategy, s.Strategy)
	}
	switch s.Formula {
	case "", FormulaYoung, FormulaDaly:
	default:
		return fmt.Errorf("%w %q", ErrUnknownFormula, s.Formula)
	}
	switch s.Content {
	case "", ContentAll, ContentLive:
	default:
		return fmt.Errorf("%w %q", ErrUnknownContent, s.Content)
	}
	if s.Interval < 0 {
		return fmt.Errorf("%w %v", ErrNonPositiveInterval, s.Interval)
	}
	for _, p := range []struct {
		name string
		v    simtime.Duration
	}{
		{"PriorMTBF", s.PriorMTBF},
		{"CkptCost", s.CkptCost},
		{"MinInterval", s.MinInterval},
		{"MaxInterval", s.MaxInterval},
	} {
		if p.v < 0 {
			return fmt.Errorf("%w: %s %v", ErrNegativeParam, p.name, p.v)
		}
	}
	if s.DeadStreak < 0 {
		return fmt.Errorf("%w: DeadStreak %d", ErrNegativeParam, s.DeadStreak)
	}
	if s.MinInterval > 0 && s.MaxInterval > 0 && s.MinInterval > s.MaxInterval {
		return fmt.Errorf("%w: %v > %v", ErrClampInverted, s.MinInterval, s.MaxInterval)
	}
	return nil
}

// IntervalFor computes the cadence the spec prescribes for a measured
// capture cost and MTBF estimate. Pure: no estimator state, so the
// analytic model and property tests can drive it directly.
func (s Spec) IntervalFor(measuredCost, mtbf simtime.Duration) simtime.Duration {
	n := s.Normalized()
	cost := measuredCost
	if cost <= 0 {
		cost = n.CkptCost
	}
	switch n.Strategy {
	case StrategyFixed:
		return n.Interval
	case StrategyAdaptive:
		// Legacy behaviour, preserved exactly: Young on every call,
		// falling back to the base interval when the estimate is wild.
		iv := Young(cost, mtbf)
		if n.Interval > 0 && (iv <= 0 || iv > n.Interval*100) {
			return n.Interval
		}
		return iv
	default: // StrategyYoungDaly
		f := Young
		if n.Formula == FormulaDaly {
			f = Daly
		}
		return n.clamp(f(cost, mtbf))
	}
}

func (s Spec) clamp(iv simtime.Duration) simtime.Duration {
	if iv <= 0 {
		iv = s.Interval
	}
	if s.MinInterval > 0 && iv < s.MinInterval {
		iv = s.MinInterval
	}
	if s.MaxInterval > 0 && iv > s.MaxInterval {
		iv = s.MaxInterval
	}
	return iv
}

// Young is Young's first-order optimum for the checkpoint interval:
// sqrt(2 · checkpointCost · MTBF).
func Young(ckptCost, mtbf simtime.Duration) simtime.Duration {
	if ckptCost <= 0 || mtbf <= 0 {
		return mtbf
	}
	return simtime.Duration(math.Sqrt(2 * float64(ckptCost) * float64(mtbf)))
}

// Daly is Daly's higher-order refinement, accurate when the checkpoint
// cost is not negligible next to the MTBF.
func Daly(ckptCost, mtbf simtime.Duration) simtime.Duration {
	if ckptCost <= 0 || mtbf <= 0 {
		return mtbf
	}
	d, m := float64(ckptCost), float64(mtbf)
	if d >= 2*m {
		return simtime.Duration(m)
	}
	x := math.Sqrt(d / (2 * m))
	return simtime.Duration(math.Sqrt(2*d*m)*(1+x/3+x*x/9) - d)
}

// MTBFEstimator is the online failure-rate tracker: the
// maximum-likelihood exponential estimate uptime/failures, with an
// optimistic prior before the first failure.
type MTBFEstimator struct {
	Prior    simtime.Duration
	failures int
	uptime   simtime.Duration
}

// NewMTBFEstimator returns an estimator with the given prior MTBF.
func NewMTBFEstimator(prior simtime.Duration) *MTBFEstimator {
	return &MTBFEstimator{Prior: prior}
}

// ObserveUptime accumulates failure-free running time.
func (e *MTBFEstimator) ObserveUptime(d simtime.Duration) { e.uptime += d }

// ObserveFailure records one failure.
func (e *MTBFEstimator) ObserveFailure() { e.failures++ }

// Estimate returns the current MTBF estimate.
func (e *MTBFEstimator) Estimate() simtime.Duration {
	if e.failures == 0 {
		return e.Prior
	}
	return e.uptime / simtime.Duration(e.failures)
}

// Failures returns the observed failure count.
func (e *MTBFEstimator) Failures() int { return e.failures }
