// The runtime half of the policy package: an Engine per job that owns
// the online MTBF estimator, tracks the measured capture cost, and
// keeps a live cadence for the agents to consult.
//
// The engine is event-driven, not tick-driven: the youngdaly strategy
// recomputes its interval only when an observation actually changes the
// inputs — a failure moved the MTBF estimate, or an acked capture moved
// the cost estimate. Each recompute observes the `policy.interval`
// histogram exactly once and bumps the `policy.recompute` counter, so a
// run's telemetry answers "how often did the policy move, and where to"
// without one sample per agent pump drowning the distribution (the same
// single-observation discipline restore.latency follows).

package policy

import (
	"fmt"

	"repro/internal/simtime"
	"repro/internal/trace"
)

// Engine evaluates one job's checkpoint policy against live
// measurements. It is driven from a single supervisor loop and, like
// MTBFEstimator before it, is not synchronized.
type Engine struct {
	spec Spec // normalized at construction
	est  *MTBFEstimator
	m    *trace.Metrics

	// cost is the EWMA of measured capture durations; zero until the
	// first observation (IntervalFor then falls back to spec.CkptCost).
	cost simtime.Duration
	// cur is the youngdaly strategy's current cadence, recomputed on
	// observation events only.
	cur        simtime.Duration
	recomputes int
}

// NewEngine validates the spec and builds its engine. A nil estimator
// gets a fresh one seeded with the spec's prior; a nil metrics bundle
// just skips telemetry. Unlike Spec.Validate, an engine demands a
// positive base interval — a supervisor cannot pace agents without one.
func NewEngine(spec Spec, est *MTBFEstimator, m *trace.Metrics) (*Engine, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	n := spec.Normalized()
	if n.Interval <= 0 {
		return nil, fmt.Errorf("%w: policy engine needs a base Interval, got %v",
			ErrNonPositiveInterval, spec.Interval)
	}
	if est == nil {
		est = NewMTBFEstimator(n.PriorMTBF)
	}
	return &Engine{spec: n, est: est, m: m, cur: n.Interval}, nil
}

// Spec returns the normalized policy the engine runs.
func (e *Engine) Spec() Spec { return e.spec }

// Estimator exposes the engine's MTBF estimator (legacy callers read
// Failures/Estimate off it directly).
func (e *Engine) Estimator() *MTBFEstimator { return e.est }

// Base returns the configured base interval: the fixed cadence, or the
// anchor the measurement-driven strategies start from and clamp around.
func (e *Engine) Base() simtime.Duration { return e.spec.Interval }

// CaptureCost returns the current capture-cost estimate: the EWMA of
// measured costs, or the spec's seed before any measurement.
func (e *Engine) CaptureCost() simtime.Duration {
	if e.cost > 0 {
		return e.cost
	}
	return e.spec.CkptCost
}

// Recomputes returns how many times the youngdaly cadence was
// recomputed — the expected observation count of `policy.interval`.
func (e *Engine) Recomputes() int { return e.recomputes }

// Interval returns the cadence the next checkpoint should follow. Fixed
// returns the configured interval; adaptive re-evaluates Young's
// formula on every consultation (the legacy per-pump behaviour, kept
// deliberately cheap and unrecorded); youngdaly returns the cadence the
// last observation event computed.
func (e *Engine) Interval() simtime.Duration {
	switch e.spec.Strategy {
	case StrategyFixed:
		return e.spec.Interval
	case StrategyAdaptive:
		return e.spec.IntervalFor(e.cost, e.est.Estimate())
	default: // StrategyYoungDaly
		return e.cur
	}
}

// ObserveUptime accumulates failure-free running time into the MTBF
// estimate. It never recomputes on its own: uptime only matters once a
// failure divides it.
func (e *Engine) ObserveUptime(d simtime.Duration) { e.est.ObserveUptime(d) }

// ObserveFailure records one failure and recomputes the live cadence.
func (e *Engine) ObserveFailure() {
	e.est.ObserveFailure()
	e.recompute()
}

// ObserveCaptureCost folds one measured capture duration into the cost
// estimate (EWMA, quarter-weight on the new sample) and recomputes the
// live cadence.
func (e *Engine) ObserveCaptureCost(d simtime.Duration) {
	if d <= 0 {
		return
	}
	if e.cost == 0 {
		e.cost = d
	} else {
		e.cost = (3*e.cost + d) / 4
	}
	e.recompute()
}

// recompute re-evaluates the youngdaly cadence from the current
// estimates. Until the first observed failure the cadence stays at the
// base interval: the prior is an assumption, and this strategy moves on
// measurements only. Exactly one policy.interval observation lands per
// recompute — never one per pump tick.
func (e *Engine) recompute() {
	if e.spec.Strategy != StrategyYoungDaly {
		return
	}
	iv := e.spec.Interval
	if e.est.Failures() > 0 {
		iv = e.spec.IntervalFor(e.cost, e.est.Estimate())
	}
	e.cur = iv
	e.recomputes++
	if e.m != nil {
		e.m.Hist("policy.interval").Observe(iv.Millis())
		e.m.Counters.Inc("policy.recompute", 1)
	}
}
