// The pipelined shipping path. The synchronous agent holds each round
// open until its image is durable on the server: capture, encode, ship,
// publish, ack, all inside one pump. Pipelining splits that round at its
// natural seam — the image is immutable the instant capture completes —
// so the agent captures epoch N+1 while epoch N is still on the wire. A
// bounded in-flight queue provides the backpressure (a slow server
// stalls capture rounds instead of buffering unboundedly), and small
// deltas waiting behind the same transfer merge into one batched publish
// that pays the per-message and per-publish overhead once.
//
// Everything the durable path guarantees survives the split, because the
// final hop is the same storage.Write/WriteBatch the synchronous path
// uses: publishes stage-then-commit atomically, a delta names its parent
// and bounces (ErrBrokenChain) if the parent is not durable, fenced
// targets reject stale epochs, and EvAck is emitted only after the
// publish returns. What changes is only *when* the job pays: transfer
// time is modeled on the cluster clock between pumps instead of inside
// the capture round.

package cluster

import (
	"errors"
	"fmt"

	"repro/internal/checkpoint"
	"repro/internal/costmodel"
	"repro/internal/mechanism"
	"repro/internal/simos/proc"
	"repro/internal/simtime"
	"repro/internal/storage"
)

// PipelineConfig tunes the pipelined shipping path; Supervisor.Pipeline
// non-nil turns it on. The zero value of each field means its default.
type PipelineConfig struct {
	// MaxInFlight bounds the ship queue (transferring + waiting units).
	// A capture round that finds the queue full is skipped and counted
	// under pipe.stalls. Default 2: one unit on the wire, one queued.
	MaxInFlight int
	// CaptureWorkers is the sharded-capture pool width used for both the
	// payload read and the agent-side encode (see checkpoint.Request
	// .Parallelism). Default 4. The default is a fixed constant, never
	// the host's core count, so simulated results are machine-independent.
	CaptureWorkers int
	// BatchBytes merges a delta into the queue's tail unit when neither
	// has started transferring and their combined payload stays under
	// this bound, so consecutive small deltas publish as one batch.
	// Default 1 MiB; negative disables batching. Full images never batch
	// — each is its own recovery anchor.
	BatchBytes int
}

func (c *PipelineConfig) validate() error {
	switch {
	case c.MaxInFlight < 0:
		return fmt.Errorf("cluster: PipelineConfig: negative MaxInFlight %d", c.MaxInFlight)
	case c.CaptureWorkers < 0:
		return fmt.Errorf("cluster: PipelineConfig: negative CaptureWorkers %d", c.CaptureWorkers)
	}
	return nil
}

func (c *PipelineConfig) maxInFlight() int {
	if c.MaxInFlight > 0 {
		return c.MaxInFlight
	}
	return 2
}

func (c *PipelineConfig) captureWorkers() int {
	if c.CaptureWorkers > 0 {
		return c.CaptureWorkers
	}
	return 4
}

func (c *PipelineConfig) batchBytes() int {
	switch {
	case c.BatchBytes > 0:
		return c.BatchBytes
	case c.BatchBytes < 0:
		return 0 // disabled
	}
	return 1 << 20
}

// shipImage is one encoded checkpoint image queued for shipping.
type shipImage struct {
	obj    string
	parent string // durable-parent requirement carried to storage.Write
	data   []byte
	full   bool
	// capturedAt/captureDur feed the publish-latency histogram and the
	// adaptive-interval policy once the image finally acks.
	capturedAt simtime.Time
	captureDur simtime.Duration
}

// shipUnit is one transfer on the wire: a single image, or a batch of
// small deltas that publish together. Units move strictly FIFO — a
// delta's parent is always ahead of it (or already durable).
type shipUnit struct {
	imgs    []shipImage
	started bool
	doneAt  simtime.Time // transfer completion, set when it reaches the wire
}

func (u *shipUnit) bytes() int {
	n := 0
	for i := range u.imgs {
		n += len(u.imgs[i].data)
	}
	return n
}

func (u *shipUnit) hasFull() bool {
	for i := range u.imgs {
		if u.imgs[i].full {
			return true
		}
	}
	return false
}

// shipCost is the simulated wire-plus-spindle time for one transfer: a
// batch moves as one message, which is exactly where batching's savings
// come from (one per-message overhead, one publish barrier).
func shipCost(cm *costmodel.Model, n int) simtime.Duration {
	return cm.NetTransfer(n) + cm.DiskStream(n)
}

// queuedImages counts images sitting in the ship queue.
func (a *ckptAgent) queuedImages() int {
	n := 0
	for _, u := range a.ship {
		n += len(u.imgs)
	}
	return n
}

// pipelineRound is the capture half of a pipelined pump: capture into
// memory, encode on the node, enqueue for shipping. No storage I/O
// happens here — that is advanceShip's job on later pumps.
func (a *ckptAgent) pipelineRound(m mechanism.Mechanism, n *Node, p *proc.Process) {
	pc := a.s.Pipeline
	if len(a.ship) >= pc.maxInFlight() {
		// Backpressure: the wire is behind. Skip the round rather than
		// buffer without bound; the dirty tracker keeps accumulating, so
		// the next delta ships a superset and nothing is lost.
		a.s.Counters.Inc("pipe.stalls", 1)
		return
	}
	workers := pc.captureWorkers()
	if cp, ok := m.(mechanism.CaptureParallelizer); ok {
		cp.SetCaptureParallelism(workers)
	}
	tk, err := a.capture(m, n, p, nil) // nil target: image stays in memory
	if err != nil {
		a.s.Counters.Inc("agent.ckpt_failed", 1)
		return
	}
	a.acked++
	if a.trk != nil {
		// The collected ranges are in the image's own buffers now; the
		// tracker no longer needs to carry them for a retry.
		a.trk.Commit()
	}
	full := tk.Img.Mode != checkpoint.ModeIncremental
	if full {
		a.forceRebase = false
	}
	data, err := tk.Img.EncodeParallelBytes(workers)
	if err != nil {
		a.s.Counters.Inc("agent.ckpt_failed", 1)
		return
	}
	n.K.Charge(checkpoint.EncodeCost(len(data), workers), "encode")
	a.enqueueShip(shipImage{
		obj:        tk.Img.ObjectName(),
		parent:     tk.Img.Parent,
		data:       data,
		full:       full,
		capturedAt: a.s.C.Now(),
		captureDur: tk.Total(),
	})
}

// enqueueShip appends the image to the ship queue, merging it into the
// tail unit when the batching rule allows.
func (a *ckptAgent) enqueueShip(si shipImage) {
	if bb := a.s.Pipeline.batchBytes(); bb > 0 && len(a.ship) > 0 && !si.full {
		u := a.ship[len(a.ship)-1]
		if !u.started && !u.hasFull() && u.bytes()+len(si.data) <= bb {
			u.imgs = append(u.imgs, si)
			a.s.Counters.Inc("pipe.batched", 1)
			return
		}
	}
	a.ship = append(a.ship, &shipUnit{imgs: []shipImage{si}})
}

// advanceShip is the transfer half of a pipelined pump: start the head
// unit's transfer if idle, and when the cluster clock has passed its
// completion, publish and ack. One unit transfers at a time — the node
// has one NIC.
func (a *ckptAgent) advanceShip(n *Node) {
	c := a.s.C
	for len(a.ship) > 0 {
		u := a.ship[0]
		if !u.started {
			u.started = true
			u.doneAt = c.Now().Add(shipCost(c.CM, u.bytes()))
		}
		if c.Now() < u.doneAt {
			return
		}
		if !a.publishUnit(n, u) {
			return // failure path already emptied or stopped the queue
		}
		a.ship = a.ship[1:]
	}
}

// publishUnit commits one transferred unit to the server through the
// agent's fenced target and acks what landed. Returns false when the
// queue must stop draining (fence suicide or a dropped chain).
func (a *ckptAgent) publishUnit(n *Node, u *shipUnit) bool {
	s := a.s
	tgt := s.shipTarget(a)
	var published int
	var err error
	if len(u.imgs) == 1 {
		si := &u.imgs[0]
		err = storage.Write(tgt, si.obj, si.data, storage.WriteOptions{Atomic: true, Parent: si.parent})
		if err == nil {
			published = 1
		}
	} else {
		items := make([]storage.BatchItem, len(u.imgs))
		for i := range u.imgs {
			items[i] = storage.BatchItem{Object: u.imgs[i].obj, Parent: u.imgs[i].parent, Data: u.imgs[i].data}
		}
		published, err = storage.WriteBatch(tgt, items, nil)
	}
	now := s.C.Now()
	for i := range u.imgs[:published] {
		si := &u.imgs[i]
		s.Counters.Inc("pipe.shipped", 1)
		if s.Metrics != nil {
			s.Metrics.Hist("pipe.publish_latency").Observe(float64(now.Sub(si.capturedAt)))
		}
		if a.epoch == s.Fence.Epoch() {
			s.noteAckObject(a, si.obj, si.full, len(si.data), si.captureDur, tgt)
		} else {
			// Fencing disabled and we are stale: the publish landed — a
			// split-brain double commit, same bookkeeping as the
			// synchronous path.
			s.Counters.Inc("fence.double_commits", 1)
			s.emit(EvStaleCommit, a.node, a.epoch, si.obj)
		}
	}
	if err == nil {
		return true
	}
	if errors.Is(err, storage.ErrFenced) {
		// Another incarnation owns the job: self-fence, exactly as a
		// synchronous publish would. stop() drops whatever was queued —
		// trim the already-acked prefix out of this unit first, or those
		// images would be counted both shipped and dropped.
		u.imgs = u.imgs[published:]
		p, lerr := n.K.Procs.Lookup(a.pid)
		if lerr != nil {
			p = nil
		}
		a.selfFence(n, p)
		return false
	}
	// Outage, injected fault, or a broken chain. Every queued image
	// chains (directly or transitively) onto the one that failed, so none
	// of them can ever satisfy the durable-parent rule: drop them all and
	// make the next capture a full image that re-anchors the chain.
	s.Counters.Inc("agent.ship_failed", 1)
	dropped := len(u.imgs) - published
	for _, rest := range a.ship[1:] {
		dropped += len(rest.imgs)
	}
	if dropped > 0 {
		s.Counters.Inc("pipe.dropped", int64(dropped))
	}
	a.ship = nil
	a.forceRebase = true
	return false
}
