package cluster

import (
	"errors"
	"testing"

	"repro/internal/simtime"
	"repro/internal/workload"
)

func TestNetLossDropsMessagesSilently(t *testing.T) {
	c := newCluster(t, 2, workload.Spin{Tag: "x"})
	c.EnableNetFaults(NetFaultConfig{Loss: 1.0})
	got := 0
	c.OnDeliver(1, func(any) { got++ })
	for i := 0; i < 10; i++ {
		if err := c.Send(0, 1, i, 64); err != nil {
			t.Fatalf("loss must be silent, got %v", err)
		}
	}
	c.RunFor(10 * simtime.Millisecond)
	if got != 0 {
		t.Fatalf("%d messages delivered under 100%% loss", got)
	}
	if n := c.Counters.Get("net.lost"); n != 10 {
		t.Fatalf("net.lost = %d, want 10", n)
	}
}

func TestNetPartitionCutsAndHeals(t *testing.T) {
	c := newCluster(t, 3, workload.Spin{Tag: "x"})
	np := c.EnableNetFaults(NetFaultConfig{})
	got := 0
	c.OnDeliver(1, func(any) { got++ })

	np.Partition("cut", 0)
	if !np.Partitioned(0, 1) || np.Partitioned(1, 2) {
		t.Fatal("partition sides wrong")
	}
	if c.Reachable(0, 1) || !c.Reachable(1, 2) {
		t.Fatal("Reachable disagrees with the partition")
	}
	_ = c.Send(0, 1, "a", 64)
	c.RunFor(5 * simtime.Millisecond)
	if got != 0 {
		t.Fatal("message crossed an active partition")
	}
	if n := c.Counters.Get("net.partitioned"); n != 1 {
		t.Fatalf("net.partitioned = %d, want 1", n)
	}

	np.Heal("cut")
	_ = c.Send(0, 1, "b", 64)
	c.RunFor(5 * simtime.Millisecond)
	if got != 1 {
		t.Fatalf("after heal got %d deliveries, want 1", got)
	}
}

func TestNetDuplicateDeliversTwice(t *testing.T) {
	c := newCluster(t, 2, workload.Spin{Tag: "x"})
	c.EnableNetFaults(NetFaultConfig{Duplicate: 1.0})
	got := 0
	c.OnDeliver(1, func(any) { got++ })
	for i := 0; i < 5; i++ {
		_ = c.Send(0, 1, i, 64)
	}
	c.RunFor(10 * simtime.Millisecond)
	if got != 10 {
		t.Fatalf("got %d deliveries of 5 sends under 100%% duplication, want 10", got)
	}
}

func TestNetDelayJitterCounts(t *testing.T) {
	c := newCluster(t, 2, workload.Spin{Tag: "x"})
	c.EnableNetFaults(NetFaultConfig{DelayJitter: 2 * simtime.Millisecond})
	got := 0
	c.OnDeliver(1, func(any) { got++ })
	for i := 0; i < 20; i++ {
		_ = c.Send(0, 1, i, 64)
	}
	c.RunFor(20 * simtime.Millisecond)
	if got != 20 {
		t.Fatalf("jitter lost messages: %d/20 delivered", got)
	}
	if c.Counters.Get("net.delayed") == 0 {
		t.Fatal("no message was recorded as delayed")
	}
}

func TestSendToDeadNodeReturnsSentinel(t *testing.T) {
	c := newCluster(t, 2, workload.Spin{Tag: "x"})
	c.Fail(1)
	err := c.Send(0, 1, "x", 64)
	if !errors.Is(err, ErrNodeDown) {
		t.Fatalf("err = %v, want ErrNodeDown", err)
	}
	if n := c.Counters.Get("net.dropped"); n != 1 {
		t.Fatalf("net.dropped = %d, want 1", n)
	}
}

func TestMailToHandlerlessNodeIsCountedDropped(t *testing.T) {
	c := newCluster(t, 2, workload.Spin{Tag: "x"})
	_ = c.Send(0, 1, "x", 64) // node 1 has no OnDeliver handler
	c.RunFor(5 * simtime.Millisecond)
	if n := c.Counters.Get("net.dropped"); n != 1 {
		t.Fatalf("net.dropped = %d, want 1", n)
	}
	if n := c.Counters.Get("net.delivered"); n != 0 {
		t.Fatalf("net.delivered = %d, want 0", n)
	}
}

func TestNetFaultsAreDeterministicPerSeed(t *testing.T) {
	run := func() (lost int64) {
		c := newCluster(t, 2, workload.Spin{Tag: "x"})
		c.EnableNetFaults(NetFaultConfig{Loss: 0.3})
		c.OnDeliver(1, func(any) {})
		for i := 0; i < 200; i++ {
			_ = c.Send(0, 1, i, 64)
		}
		c.RunFor(10 * simtime.Millisecond)
		return c.Counters.Get("net.lost")
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed, different loss pattern: %d vs %d", a, b)
	}
	if a == 0 || a == 200 {
		t.Fatalf("loss 0.3 produced degenerate count %d", a)
	}
}
