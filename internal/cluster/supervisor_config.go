// Supervisor construction. The Supervisor grew field by field across the
// crash-consistency, autonomic, and incremental-shipping work, and every
// caller built it as a bare struct literal — so an invalid combination
// (zero interval, nil cluster, out-of-range control node) only surfaced
// mid-run, often as a hang. NewSupervisor moves that failure to
// construction time and gives defaults one authoritative home.

package cluster

import (
	"errors"
	"fmt"

	"repro/internal/mechanism"
	"repro/internal/policy"
	"repro/internal/simos/kernel"
	"repro/internal/simtime"
	"repro/internal/storage"
	"repro/internal/trace"
)

// SupervisorConfig configures NewSupervisor. (The name is not
// cluster.Config only because that is already the Cluster's own
// construction config.) Zero values mean "use the default" wherever a
// default exists; the required fields are C, MkMech, Prog, Iterations,
// and Policy.
type SupervisorConfig struct {
	// Required.
	C          *Cluster
	MkMech     func() mechanism.Mechanism
	Prog       kernel.Program
	Iterations uint64
	// Policy is the job's checkpoint policy: the cadence strategy
	// (fixed / youngdaly / adaptive) with its parameters, plus the delta
	// content policy (everything dirty, or live pages only). Validated
	// here with policy's typed errors; policy.Fixed(d) reproduces the
	// old fixed-Interval behaviour exactly.
	Policy policy.Spec

	// Interval and Adaptive are deprecated: the pre-policy cadence
	// knobs, kept for one release. A zero Policy with Interval set maps
	// onto policy.Fixed(Interval) — or the adaptive strategy when
	// Adaptive is also set — with behaviour identical to the old fields
	// (asserted by TestDeprecatedIntervalAlias). Setting both Policy and
	// Interval is a configuration error.
	//
	// Deprecated: set Policy instead.
	Interval simtime.Duration
	// Deprecated: set Policy (strategy "adaptive") instead.
	Adaptive bool

	UseLocalDisk bool
	// Estimator, when non-nil, seeds the policy engine's MTBF estimator
	// (experiments pre-train one across runs).
	Estimator *MTBFEstimator

	// MaxRetries bounds per-round checkpoint retries (0 = default 3;
	// negative disables retries). RetryBackoff is the first retry delay,
	// doubled per attempt (0 = default 1ms).
	MaxRetries    int
	RetryBackoff  simtime.Duration
	LocalFallback bool
	UnsafeCommit  bool

	// Incremental ships delta chains from the node-local agents;
	// RebaseEvery bounds the chain (0 = default 8).
	Incremental bool
	RebaseEvery int
	// CompactAfter, when positive with Incremental, additionally bounds
	// the chain server-side: past that many deltas the supervisor folds
	// the chain into one full image on the server and retires the folded
	// deltas (no capture traffic). 0 disables.
	CompactAfter int
	// RestoreWorkers shards chain replay on restarts (0 = follow the
	// pipeline's capture width, else sequential).
	RestoreWorkers int
	// LazyRestore switches failover to restart-before-read: only the
	// leaf image is read before the job resumes; remaining pages are
	// served on demand and by a background prefetcher (see lazy.go).
	// Autonomic mode only.
	LazyRestore bool

	// Counters defaults to the cluster's shared counter set. Metrics
	// (latency histograms) defaults to a bundle sharing those counters.
	Counters *trace.Counters
	Metrics  *trace.Metrics

	// Autonomic mode (heartbeat suspicion, fenced failover).
	Detector    FailureDetector
	Fence       *storage.FenceDomain
	NoFencing   bool
	ControlNode int

	// Pipeline, when non-nil, overlaps capture of epoch N+1 with shipping
	// of epoch N in the node-local agents. Autonomic mode only.
	Pipeline *PipelineConfig

	// Replication, when non-nil, fans every checkpoint out to a replica
	// placement set (buddy mirrors or erasure shards, see
	// ReplicationConfig) instead of the server alone, and restores from
	// the nearest surviving replica. Autonomic mode only.
	Replication *ReplicationConfig

	// OnEvent receives each orchestration event as it is emitted.
	OnEvent func(Event)
}

// NewSupervisor validates cfg, applies defaults, and returns a ready
// Supervisor. Misconfigurations that previously surfaced mid-run — or
// never, as a silent hang — are rejected here.
func NewSupervisor(cfg SupervisorConfig) (*Supervisor, error) {
	switch {
	case cfg.C == nil:
		return nil, errors.New("cluster: NewSupervisor: nil Cluster")
	case cfg.MkMech == nil:
		return nil, errors.New("cluster: NewSupervisor: nil MkMech (mechanism factory)")
	case cfg.Prog == nil:
		return nil, errors.New("cluster: NewSupervisor: nil Prog (workload)")
	case cfg.Iterations == 0:
		return nil, errors.New("cluster: NewSupervisor: zero Iterations")
	case cfg.ControlNode < 0 || cfg.ControlNode >= cfg.C.NumNodes():
		return nil, fmt.Errorf("cluster: NewSupervisor: ControlNode %d outside [0,%d)",
			cfg.ControlNode, cfg.C.NumNodes())
	}
	pol, err := cfg.policySpec()
	if err != nil {
		return nil, err
	}
	if cfg.RebaseEvery < 0 {
		return nil, fmt.Errorf("cluster: NewSupervisor: negative RebaseEvery %d", cfg.RebaseEvery)
	}
	if cfg.CompactAfter < 0 {
		return nil, fmt.Errorf("cluster: NewSupervisor: negative CompactAfter %d", cfg.CompactAfter)
	}
	if cfg.CompactAfter > 0 && !cfg.Incremental {
		return nil, errors.New("cluster: NewSupervisor: CompactAfter without Incremental (nothing to fold)")
	}
	if cfg.RestoreWorkers < 0 {
		return nil, fmt.Errorf("cluster: NewSupervisor: negative RestoreWorkers %d", cfg.RestoreWorkers)
	}
	if cfg.LazyRestore && cfg.Detector == nil {
		return nil, errors.New("cluster: NewSupervisor: LazyRestore requires a Detector (autonomic failover)")
	}
	if cfg.Pipeline != nil {
		if err := cfg.Pipeline.validate(); err != nil {
			return nil, err
		}
		if cfg.Detector == nil {
			return nil, errors.New("cluster: NewSupervisor: Pipeline requires a Detector (autonomic mode)")
		}
	}
	if cfg.Replication != nil {
		if cfg.Detector == nil {
			return nil, errors.New("cluster: NewSupervisor: Replication requires a Detector (autonomic mode)")
		}
		// Every node except the control node can hold job state.
		if err := cfg.Replication.validate(cfg.C.NumNodes() - 1); err != nil {
			return nil, err
		}
	}

	s := &Supervisor{
		C:              cfg.C,
		MkMech:         cfg.MkMech,
		Prog:           cfg.Prog,
		Iterations:     cfg.Iterations,
		UseLocalDisk:   cfg.UseLocalDisk,
		MaxRetries:     cfg.MaxRetries,
		RetryBackoff:   cfg.RetryBackoff,
		LocalFallback:  cfg.LocalFallback,
		UnsafeCommit:   cfg.UnsafeCommit,
		Incremental:    cfg.Incremental,
		RebaseEvery:    cfg.RebaseEvery,
		CompactAfter:   cfg.CompactAfter,
		RestoreWorkers: cfg.RestoreWorkers,
		LazyRestore:    cfg.LazyRestore,
		Counters:       cfg.Counters,
		Metrics:        cfg.Metrics,
		Detector:       cfg.Detector,
		Fence:          cfg.Fence,
		NoFencing:      cfg.NoFencing,
		ControlNode:    cfg.ControlNode,
		Pipeline:       cfg.Pipeline,
		Replication:    cfg.Replication,
		OnEvent:        cfg.OnEvent,
	}
	// Defaults, applied eagerly so a constructed Supervisor is fully
	// specified before Run.
	if s.Counters == nil {
		s.Counters = s.C.Counters
	}
	if s.Metrics == nil {
		s.Metrics = trace.NewMetricsWith(s.Counters)
	}
	// The policy engine needs the final metrics bundle, so it is built
	// after the defaults above. Its estimator doubles as the legacy
	// Supervisor.Estimator field.
	eng, err := policy.NewEngine(pol, cfg.Estimator, s.Metrics)
	if err != nil {
		return nil, fmt.Errorf("cluster: NewSupervisor: %w", err)
	}
	s.Policy = eng
	s.Estimator = eng.Estimator()
	if s.MaxRetries == 0 {
		s.MaxRetries = 3
	}
	if s.RetryBackoff == 0 {
		s.RetryBackoff = simtime.Millisecond
	}
	if s.RebaseEvery == 0 {
		s.RebaseEvery = 8
	}
	// Run reinitializes this, but a constructed Supervisor should also be
	// usable for driving agents directly (white-box tests, probes).
	s.mechAt = make(map[int]nodeMech)
	return s, nil
}

// policySpec resolves the configured policy: the new Policy field, or —
// while the deprecation alias lasts — the legacy Interval/Adaptive pair
// mapped onto the equivalent strategy. Both at once is a configuration
// error, and so is neither.
func (cfg SupervisorConfig) policySpec() (policy.Spec, error) {
	legacy := cfg.Interval != 0 || cfg.Adaptive
	switch {
	case cfg.Policy != (policy.Spec{}) && legacy:
		return policy.Spec{}, errors.New(
			"cluster: NewSupervisor: both Policy and deprecated Interval/Adaptive set")
	case cfg.Policy != (policy.Spec{}):
		if err := cfg.Policy.Validate(); err != nil {
			return policy.Spec{}, fmt.Errorf("cluster: NewSupervisor: %w", err)
		}
		if cfg.Policy.Interval <= 0 {
			return policy.Spec{}, fmt.Errorf("cluster: NewSupervisor: %w: Policy.Interval %v",
				policy.ErrNonPositiveInterval, cfg.Policy.Interval)
		}
		return cfg.Policy, nil
	case cfg.Interval <= 0:
		return policy.Spec{}, fmt.Errorf("cluster: NewSupervisor: %w: Interval %v",
			policy.ErrNonPositiveInterval, cfg.Interval)
	case cfg.Adaptive:
		sp := policy.AdaptiveYoung(0)
		sp.Interval = cfg.Interval
		return sp, nil
	default:
		return policy.Fixed(cfg.Interval), nil
	}
}

// MustNewSupervisor is NewSupervisor for call sites whose config is
// statically known valid (examples, experiment tables); it panics on a
// config error instead of returning it.
func MustNewSupervisor(cfg SupervisorConfig) *Supervisor {
	s, err := NewSupervisor(cfg)
	if err != nil {
		panic(err)
	}
	return s
}
