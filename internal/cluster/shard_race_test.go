// Race-focused exercises for the concurrent shard event loops. These
// are ordinary deterministic tests, but they are shaped to maximize
// cross-shard interleaving — simultaneous failovers in several shards,
// migration ping-pong between two shards, and root/shard fence-epoch
// handoff — and the CI race subset runs this package under -race.

package cluster

import (
	"testing"

	"repro/internal/simtime"
	"repro/internal/storage"
)

// Every shard fails a member at the same instant, so all shard loops
// run their failover + fence-advance paths in the same tick, in
// parallel.
func TestRaceSimultaneousShardFailovers(t *testing.T) {
	cfg := fleetCfg(16, 4, 16, 21)
	r := MustNewRootSupervisor(cfg)
	for s := 0; s < 4; s++ {
		// First member of each shard (shards are contiguous quarters).
		if err := r.FailAt(10*simtime.Millisecond, s*4, true, 0); err != nil {
			t.Fatal(err)
		}
	}
	st := r.Run(100 * simtime.Millisecond)
	if st.Detections != 4 {
		t.Fatalf("detections = %d, want 4", st.Detections)
	}
	if st.Failovers < 4 {
		t.Fatalf("failovers = %d, want >= 4", st.Failovers)
	}
	for s := 0; s < 4; s++ {
		if e := r.shards[s].fence.Epoch(); e < 2 {
			t.Fatalf("shard %d fence epoch %d, want >= 2 (advanced on failover)", s, e)
		}
	}
	if st.DoubleCommits != 0 {
		t.Fatalf("double commits = %d", st.DoubleCommits)
	}
}

// Migration ping-pong: shard 0's members all fail transiently (jobs
// migrate to shard 1), then after shard 0 recovers, shard 1's members
// all fail (jobs migrate back). The root's placement path and both
// shards' loops hand the same jobs back and forth.
func TestRaceCrossShardMigratePingPong(t *testing.T) {
	cfg := fleetCfg(4, 2, 2, 23)
	r := MustNewRootSupervisor(cfg)
	for _, n := range []int{0, 1} {
		if err := r.FailAt(10*simtime.Millisecond, n, false, 40*simtime.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	for _, n := range []int{2, 3} {
		if err := r.FailAt(80*simtime.Millisecond, n, false, 40*simtime.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	st := r.Run(200 * simtime.Millisecond)
	if st.Migrations < 2 {
		t.Fatalf("migrations = %d, want >= 2 (ping and pong)\n%s", st.Migrations, FormatEvents(r.Events))
	}
	if st.DoubleCommits != 0 {
		t.Fatalf("double commits = %d", st.DoubleCommits)
	}
	// Jobs must end up placed somewhere and still checkpointing.
	placed := 0
	for _, sh := range r.shards {
		placed += len(sh.jobs)
	}
	if placed != 2 {
		t.Fatalf("%d jobs placed at end, want 2 (pending=%d)", placed, len(r.pending))
	}
}

// Fence-epoch handoff under sustained churn: lossy digests induce false
// suspicions and epoch advances in every shard while the root migrates
// jobs between them. Run twice to also pin determinism under the racy
// schedule.
func TestRaceFenceEpochHandoffChurn(t *testing.T) {
	run := func() (FleetStats, string) {
		cfg := fleetCfg(24, 6, 24, 29)
		cfg.DigestLoss = 0.30
		cfg.DigestJitter = 2 * simtime.Millisecond
		cfg.DetectAfter = 2 * simtime.Millisecond
		r := MustNewRootSupervisor(cfg)
		for i := 0; i < 6; i++ {
			if err := r.FailAt(simtime.Duration(10+i*15)*simtime.Millisecond, i*4+1, false, 25*simtime.Millisecond); err != nil {
				t.Fatal(err)
			}
		}
		return r.Run(250 * simtime.Millisecond), FormatEvents(r.Events)
	}
	st1, ev1 := run()
	if st1.DoubleCommits != 0 {
		t.Fatalf("double commits = %d under churn with fencing on", st1.DoubleCommits)
	}
	if st1.Failovers == 0 {
		t.Fatal("churn produced no failovers; test exercises nothing")
	}
	_, ev2 := run()
	if ev1 != ev2 {
		t.Fatal("event log diverges across identical churn runs")
	}
}

// The root's migration path must bind the job to the TARGET shard's
// fence domain: after migration, an epoch advance in the source shard
// must not fence the migrated writer, and an advance in the target
// shard must.
func TestRaceMigratedWriterBoundToTargetFence(t *testing.T) {
	cfg := fleetCfg(4, 2, 1, 31)
	r := MustNewRootSupervisor(cfg)
	for _, n := range []int{0, 1} {
		if err := r.FailAt(10*simtime.Millisecond, n, true, 0); err != nil {
			t.Fatal(err)
		}
	}
	r.Run(60 * simtime.Millisecond)
	var job *fleetJob
	for _, sh := range r.shards {
		if len(sh.jobs) > 0 {
			job = sh.jobs[0]
		}
	}
	if job == nil || r.shardOfNode(job.node).id != 1 {
		t.Fatalf("job not migrated to shard 1\n%s", FormatEvents(r.Events))
	}
	// Source-shard advance: the migrated writer is unaffected.
	r.shards[0].fence.Advance()
	if err := storage.Write(job.tgt, "s001/handoff-probe-a", []byte("x"), storage.WriteOptions{Atomic: true}); err != nil {
		t.Fatalf("source-shard fence advance fenced a migrated writer: %v", err)
	}
	// Target-shard advance: the writer's epoch is now stale.
	r.shards[1].fence.Advance()
	if err := storage.Write(job.tgt, "s001/handoff-probe-b", []byte("x"), storage.WriteOptions{Atomic: true}); err == nil {
		t.Fatal("target-shard fence advance did not fence the migrated writer")
	}
}
