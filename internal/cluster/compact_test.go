package cluster

import (
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/detector"
	"repro/internal/mechanism"
	"repro/internal/policy"
	"repro/internal/simtime"
	"repro/internal/syslevel"
	"repro/internal/workload"
)

// The compaction tentpole end to end: with incremental shipping on and
// rebase effectively off, server-side folds are the only thing keeping
// the chain short. The job must survive a mid-run failover (restoring
// from a previously compacted chain), the live chain must respect the
// CompactAfter bound, and every folded delta must really be gone.
func TestAutonomicCompactionBoundsChain(t *testing.T) {
	prog := workload.Sparse{MiB: 1, WriteFrac: 0.2, Seed: 31}
	want := referenceFingerprint(t, prog, 60)

	c := newCluster(t, 4, prog)
	mon := detector.NewMonitor(c, detector.NewTimeout(2*simtime.Millisecond),
		detector.Config{Period: 200 * simtime.Microsecond, Observer: 3}, c.Counters)

	// Fail the job's node after several compaction rounds have run, so
	// the recovery chain walk starts from a folded full image.
	failed := false
	c.OnStep(func() {
		if !failed && c.Now() >= simtime.Time(8*simtime.Millisecond) {
			failed = true
			c.Fail(0)
		}
	})

	sup := MustNewSupervisor(SupervisorConfig{
		C:            c,
		MkMech:       func() mechanism.Mechanism { return syslevel.NewCRAK() },
		Prog:         prog,
		Iterations:   60,
		Policy:       policy.Fixed(simtime.Millisecond),
		Detector:     mon,
		ControlNode:  3,
		Incremental:  true,
		RebaseEvery:  100, // never rebases within this job: folds own the bound
		CompactAfter: 2,
	})
	if err := sup.Run(2 * simtime.Second); err != nil {
		t.Fatal(err)
	}
	if !sup.Completed {
		t.Fatalf("job did not complete (ckpts=%d restarts=%d counters:\n%s)",
			sup.Checkpoints, sup.Restarts, c.Counters)
	}
	if sup.Fingerprint != want {
		t.Fatalf("fingerprint %#x want %#x", sup.Fingerprint, want)
	}
	if sup.Restarts == 0 {
		t.Fatal("the node failure caused no failover")
	}
	if n := c.Counters.Get("compact.folds"); n == 0 {
		t.Fatalf("no compaction ran (counters:\n%s)", c.Counters)
	}
	if n := c.Counters.Get("compact.folded_deltas"); n < 3 {
		t.Fatalf("compact.folded_deltas = %d, want ≥3 (each fold folds >CompactAfter deltas)", n)
	}
	if n := c.Counters.Get("compact.failed"); n != 0 {
		t.Fatalf("compact.failed = %d, want 0 on a fault-free server", n)
	}
	for _, k := range []string{"ckpt.torn", "ckpt.lost", "ckpt.chain_fallback", "fence.double_commits"} {
		if n := c.Counters.Get(k); n != 0 {
			t.Fatalf("%s = %d, want 0", k, n)
		}
	}

	// The bound compaction pays for: the final live chain replays at most
	// CompactAfter deltas, and it still verifies end to end.
	rem := c.Node(3).Remote()
	chain, err := checkpoint.LoadChain(rem, nil, sup.LastLeaf())
	if err != nil {
		t.Fatalf("live chain from %s is not replayable: %v", sup.LastLeaf(), err)
	}
	if deltas := len(chain) - 1; deltas > 2 {
		t.Fatalf("final chain replays %d deltas despite CompactAfter=2", deltas)
	}
	if chain[0].Mode != checkpoint.ModeFull {
		t.Fatalf("chain root mode = %v, want full", chain[0].Mode)
	}

	// Every fold emitted a compact event and retired its inputs for real.
	compacts := 0
	for _, ev := range sup.Events {
		switch ev.Kind {
		case EvCompact:
			compacts++
		case EvRetire:
			if _, err := rem.ObjectSize(ev.Object); err == nil {
				t.Fatalf("retired object %s still on the server", ev.Object)
			}
		}
	}
	if compacts == 0 {
		t.Fatal("compact.folds counted but no EvCompact event was emitted")
	}

	// Restore telemetry rode along with the failover.
	if n := c.Counters.Get("restore.count"); int(n) != sup.Restarts {
		t.Fatalf("restore.count = %d, want %d (one per restart)", n, sup.Restarts)
	}
	lat := sup.Metrics.Hist("restore.latency").Snapshot()
	if lat.N != sup.Restarts {
		t.Fatalf("restore.latency has %d observations, want %d", lat.N, sup.Restarts)
	}
}

// A fold that lands mid-run must never strand the recovery pointer:
// restore immediately after a compaction replays the folded full image
// and reproduces the exact reference state.
func TestRestoreRightAfterCompaction(t *testing.T) {
	prog := workload.Sparse{MiB: 1, WriteFrac: 0.2, Seed: 33}
	want := referenceFingerprint(t, prog, 60)

	c := newCluster(t, 4, prog)
	mon := detector.NewMonitor(c, detector.NewTimeout(2*simtime.Millisecond),
		detector.Config{Period: 200 * simtime.Microsecond, Observer: 3}, c.Counters)

	sup := MustNewSupervisor(SupervisorConfig{
		C:            c,
		MkMech:       func() mechanism.Mechanism { return syslevel.NewCRAK() },
		Prog:         prog,
		Iterations:   60,
		Policy:       policy.Fixed(simtime.Millisecond),
		Detector:     mon,
		ControlNode:  3,
		Incremental:  true,
		RebaseEvery:  100,
		CompactAfter: 2,
	})

	// Kill the job's node on the very next step after the first fold —
	// the tightest window between GC of the old deltas and the restore
	// that must now come from the folded image.
	jobNode := 0
	folded := false
	sup.OnEvent = func(ev Event) {
		if ev.Kind == EvAdmit {
			jobNode = ev.Node
		}
		if ev.Kind == EvCompact {
			folded = true
		}
	}
	struck := false
	c.OnStep(func() {
		if folded && !struck {
			struck = true
			c.Fail(jobNode)
		}
	})

	if err := sup.Run(2 * simtime.Second); err != nil {
		t.Fatal(err)
	}
	if !struck {
		t.Fatal("no compaction happened — scenario did not run")
	}
	if !sup.Completed {
		t.Fatalf("job did not complete (ckpts=%d restarts=%d counters:\n%s)",
			sup.Checkpoints, sup.Restarts, c.Counters)
	}
	if sup.Fingerprint != want {
		t.Fatalf("fingerprint %#x want %#x: restore from folded image lost state", sup.Fingerprint, want)
	}
	if n := c.Counters.Get("ckpt.chain_fallback"); n != 0 {
		t.Fatalf("ckpt.chain_fallback = %d: the fold broke the primary chain walk", n)
	}
	if sup.FromScratch != 0 {
		t.Fatalf("recovery went from scratch %d times right after a fold", sup.FromScratch)
	}
}
