package cluster

import (
	"testing"

	"repro/internal/simtime"
	"repro/internal/storage"
	"repro/internal/workload"
)

func putLocal(t *testing.T, n *Node, object, data string) {
	t.Helper()
	if err := storage.Write(n.Disk, object, []byte(data), storage.WriteOptions{}); err != nil {
		t.Fatal(err)
	}
}

// §4.1: a transient failure is a power outage — the same machine reboots
// and its local disk comes back with every checkpoint image intact.
func TestTransientFailureKeepsLocalCheckpoints(t *testing.T) {
	c := newCluster(t, 2, workload.Spin{Tag: "x"})
	n := c.Node(0)
	putLocal(t, n, "ckpt/pid1/seq1", "img")

	c.FailKind(0, Transient)
	if n.Disk.Available() {
		t.Fatal("local disk reachable on a dead node")
	}
	c.Reboot(0)
	data, err := n.Disk.ReadObject("ckpt/pid1/seq1", nil)
	if err != nil || string(data) != "img" {
		t.Fatalf("transient reboot lost the local image: %q, %v", data, err)
	}
}

// §4.1: a permanent failure replaces the machine — the node that comes
// back has a blank disk, so node-local checkpoints are gone for good.
func TestPermanentFailureLosesLocalCheckpoints(t *testing.T) {
	c := newCluster(t, 2, workload.Spin{Tag: "x"})
	n := c.Node(0)
	putLocal(t, n, "ckpt/pid1/seq1", "img")

	c.FailKind(0, Permanent)
	c.Reboot(0)
	if _, err := n.Disk.ReadObject("ckpt/pid1/seq1", nil); err == nil {
		t.Fatal("image survived a machine replacement")
	}
	if got := len(n.Disk.List()); got != 0 {
		t.Fatalf("replacement machine's disk has %d objects, want 0", got)
	}
}

// The injector preserves the kind distinction end to end: with
// PermanentFrac 0 every failure is transient, nodes repair, and their
// disks keep pre-failure images.
func TestInjectorTransientRepairKeepsDisk(t *testing.T) {
	c := newCluster(t, 2, workload.Spin{Tag: "x"})
	for i, n := range c.Nodes() {
		putLocal(t, n, "ckpt/pid1/seq1", "img")
		_ = i
	}
	inj := NewInjector(Exponential{Mean: 5 * simtime.Millisecond}, simtime.Millisecond, 9, 2)
	fails := 0
	inj.OnFail = func(c *Cluster, node int, kind FailureKind) {
		fails++
		if kind != Transient {
			t.Fatalf("PermanentFrac 0 produced a %v failure", kind)
		}
	}
	c.SetInjector(inj)
	c.RunFor(60 * simtime.Millisecond)
	if fails == 0 {
		t.Fatal("injector never fired")
	}
	for i, n := range c.Nodes() {
		if !n.Alive() {
			continue // mid-outage at the horizon; its disk is unreachable
		}
		if data, err := n.Disk.ReadObject("ckpt/pid1/seq1", nil); err != nil || string(data) != "img" {
			t.Fatalf("node %d lost its local image across transient repairs: %q, %v", i, data, err)
		}
	}
}

// With PermanentFrac 1 every failure is a machine loss: the injector
// schedules no repair, and the node stays down.
func TestInjectorPermanentFailureStaysDown(t *testing.T) {
	c := newCluster(t, 2, workload.Spin{Tag: "x"})
	inj := NewInjector(Exponential{Mean: 5 * simtime.Millisecond}, simtime.Millisecond, 9, 2)
	inj.PermanentFrac = 1.0
	kinds := 0
	inj.OnFail = func(c *Cluster, node int, kind FailureKind) {
		kinds++
		if kind != Permanent {
			t.Fatalf("PermanentFrac 1 produced a %v failure", kind)
		}
	}
	c.SetInjector(inj)
	c.RunFor(60 * simtime.Millisecond)
	if kinds == 0 {
		t.Fatal("injector never fired")
	}
	for i, n := range c.Nodes() {
		if n.Alive() {
			t.Fatalf("node %d repaired after a permanent failure", i)
		}
	}
}
