package cluster

import (
	"testing"

	"repro/internal/detector"
	"repro/internal/mechanism"
	"repro/internal/policy"
	"repro/internal/simos/proc"
	"repro/internal/simtime"
	"repro/internal/syslevel"
	"repro/internal/workload"
)

// referenceFingerprint runs the workload to completion on a pristine
// single node and returns its result fingerprint.
func referenceFingerprint(t *testing.T, prog workload.Sparse, iters uint64) uint64 {
	t.Helper()
	c := newCluster(t, 1, prog)
	p, err := c.Node(0).K.Spawn(prog.Name())
	if err != nil {
		t.Fatal(err)
	}
	workload.SetIterations(p, iters)
	if !c.RunUntil(func() bool { return p.State == proc.StateZombie }, simtime.Minute) {
		t.Fatal("reference run did not complete")
	}
	return workload.Fingerprint(p)
}

// The headline scenario: a network partition makes the job's node LOOK
// dead. The detector (rightly, given its evidence) suspects it, the
// supervisor fails over, and the partitioned incarnation keeps running —
// a split brain. Fencing must (a) reject every commit attempt by the
// stale incarnation and (b) let the job finish correctly anyway. The
// supervisor's decision path reads no simulator ground truth at all.
func TestAutonomicFalseSuspicionIsFencedAndRecovers(t *testing.T) {
	prog := workload.Sparse{MiB: 1, WriteFrac: 0.2, Seed: 31}
	want := referenceFingerprint(t, prog, 60)

	c := newCluster(t, 4, prog)
	np := c.EnableNetFaults(NetFaultConfig{})
	mon := detector.NewMonitor(c, detector.NewTimeout(2*simtime.Millisecond),
		detector.Config{Period: 200 * simtime.Microsecond, Observer: 3}, c.Counters)

	// Cut node 0 (where the job starts) off from the control plane for
	// 10ms mid-run; the node itself never fails. Storage is dual-homed,
	// so the stale incarnation can still reach the checkpoint server —
	// the worst case for split brain.
	cutAt := simtime.Time(7 * simtime.Millisecond)
	healAt := simtime.Time(17 * simtime.Millisecond)
	cut, healed := false, false
	c.OnStep(func() {
		if !cut && c.Now() >= cutAt {
			cut = true
			np.Partition("island", 0)
		}
		if cut && !healed && c.Now() >= healAt {
			healed = true
			np.Heal("island")
		}
	})

	sup := MustNewSupervisor(SupervisorConfig{
		C:           c,
		MkMech:      func() mechanism.Mechanism { return syslevel.NewCRAK() },
		Prog:        prog,
		Iterations:  60,
		Policy:      policy.Fixed(3 * simtime.Millisecond),
		Detector:    mon,
		ControlNode: 3,
	})
	if err := sup.Run(2 * simtime.Second); err != nil {
		t.Fatal(err)
	}
	if !sup.Completed {
		t.Fatalf("job did not complete (ckpts=%d restarts=%d counters:\n%s)",
			sup.Checkpoints, sup.Restarts, c.Counters)
	}
	if sup.Fingerprint != want {
		t.Fatalf("fingerprint %#x want %#x", sup.Fingerprint, want)
	}
	if sup.Restarts == 0 {
		t.Fatal("the partition caused no failover — scenario did not exercise recovery")
	}
	if n := c.Counters.Get("det.false_positives"); n == 0 {
		t.Fatal("no false positive was recorded (node 0 never died)")
	}
	if n := c.Counters.Get("det.wasted_restarts"); n == 0 {
		t.Fatal("failover of a live node was not counted as wasted")
	}
	if n := c.Counters.Get("fence.rejected"); n == 0 {
		t.Fatal("the stale incarnation never hit the fence")
	}
	if n := c.Counters.Get("fence.double_commits"); n != 0 {
		t.Fatalf("fence.double_commits = %d, want 0 (split brain leaked a commit)", n)
	}
	if sup.OracleReads != 0 {
		t.Fatalf("autonomic supervisor read ground truth %d times", sup.OracleReads)
	}
	// The partitioned process was told by the storage server that it had
	// been superseded and killed itself.
	if n := c.Counters.Get("fence.suicides"); n == 0 {
		t.Fatal("stale incarnation never self-fenced")
	}
	if p, err := c.Node(0).K.Procs.Lookup(1); err == nil && p.State == proc.StateRunning {
		t.Fatal("stale process still running after self-fence")
	}
}

// The same split-brain scenario with fencing disabled: the stale
// incarnation's commits land, and the double-commit counter exposes it.
// This is the contrast that proves the fence is what provides the safety
// in the test above.
func TestAutonomicNoFencingLeaksDoubleCommits(t *testing.T) {
	prog := workload.Sparse{MiB: 1, WriteFrac: 0.2, Seed: 31}
	c := newCluster(t, 4, prog)
	np := c.EnableNetFaults(NetFaultConfig{})
	mon := detector.NewMonitor(c, detector.NewTimeout(2*simtime.Millisecond),
		detector.Config{Period: 200 * simtime.Microsecond, Observer: 3}, c.Counters)
	cut := false
	c.OnStep(func() {
		if !cut && c.Now() >= simtime.Time(7*simtime.Millisecond) {
			cut = true
			np.Partition("island", 0)
		}
		if cut && c.Now() >= simtime.Time(17*simtime.Millisecond) {
			np.Heal("island")
		}
	})
	sup := MustNewSupervisor(SupervisorConfig{
		C:           c,
		MkMech:      func() mechanism.Mechanism { return syslevel.NewCRAK() },
		Prog:        prog,
		Iterations:  60,
		Policy:      policy.Fixed(3 * simtime.Millisecond),
		Detector:    mon,
		ControlNode: 3,
		NoFencing:   true,
	})
	if err := sup.Run(2 * simtime.Second); err != nil {
		t.Fatal(err)
	}
	if n := c.Counters.Get("fence.double_commits"); n == 0 {
		t.Fatal("no double commit observed with fencing disabled — contrast lost its teeth")
	}
	if n := c.Counters.Get("fence.rejected"); n != 0 {
		t.Fatalf("fence.rejected = %d with fencing disabled", n)
	}
}

// Phi-accrual under 5% heartbeat loss and real (transient) failures:
// the job completes with the right answer, zero split-brain commits, and
// a supervisor that never consulted the oracle.
func TestAutonomicPhiUnderLossAndRealFailures(t *testing.T) {
	prog := workload.Sparse{MiB: 1, WriteFrac: 0.2, Seed: 31}
	want := referenceFingerprint(t, prog, 60)

	c := newCluster(t, 4, prog)
	c.EnableNetFaults(NetFaultConfig{Loss: 0.05, DelayJitter: 100 * simtime.Microsecond})
	period := 200 * simtime.Microsecond
	mon := detector.NewMonitor(c, detector.NewPhiAccrual(8, 64, period/2),
		detector.Config{Period: period, Observer: 3}, c.Counters)
	// Real failures on the worker nodes only (the control node stays up;
	// a failing observer is a different experiment).
	inj := NewInjector(Exponential{Mean: 25 * simtime.Millisecond}, 2*simtime.Millisecond, 7, 3)
	c.SetInjector(inj)

	sup := MustNewSupervisor(SupervisorConfig{
		C:           c,
		MkMech:      func() mechanism.Mechanism { return syslevel.NewCRAK() },
		Prog:        prog,
		Iterations:  60,
		Policy:      policy.Fixed(3 * simtime.Millisecond),
		Detector:    mon,
		ControlNode: 3,
	})
	if err := sup.Run(2 * simtime.Second); err != nil {
		t.Fatal(err)
	}
	if !sup.Completed {
		t.Fatalf("job did not complete (ckpts=%d restarts=%d counters:\n%s)",
			sup.Checkpoints, sup.Restarts, c.Counters)
	}
	if sup.Fingerprint != want {
		t.Fatalf("fingerprint %#x want %#x", sup.Fingerprint, want)
	}
	if n := c.Counters.Get("fence.double_commits"); n != 0 {
		t.Fatalf("fence.double_commits = %d, want 0", n)
	}
	if sup.OracleReads != 0 {
		t.Fatalf("autonomic supervisor read ground truth %d times", sup.OracleReads)
	}
	if n := c.Counters.Get("det.detections"); n == 0 {
		t.Fatal("real failures occurred but none was detected")
	}
}
