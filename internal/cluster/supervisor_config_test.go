package cluster

import (
	"strings"
	"testing"

	"repro/internal/mechanism"
	"repro/internal/policy"
	"repro/internal/simtime"
	"repro/internal/syslevel"
	"repro/internal/workload"
)

func validConfig(c *Cluster, prog workload.Sparse) SupervisorConfig {
	return SupervisorConfig{
		C:          c,
		MkMech:     func() mechanism.Mechanism { return syslevel.NewCRAK() },
		Prog:       prog,
		Iterations: 10,
		Policy:     policy.Fixed(simtime.Millisecond),
	}
}

func TestNewSupervisorDefaults(t *testing.T) {
	prog := workload.Sparse{MiB: 1, WriteFrac: 0.2, Seed: 1}
	c := newCluster(t, 2, prog)
	sup, err := NewSupervisor(validConfig(c, prog))
	if err != nil {
		t.Fatal(err)
	}
	if sup.Estimator == nil {
		t.Error("Estimator not defaulted")
	}
	if sup.Counters != c.Counters {
		t.Error("Counters should default to the cluster's shared set")
	}
	if sup.Metrics == nil || sup.Metrics.Counters != sup.Counters {
		t.Error("Metrics should default to a bundle sharing the supervisor's counters")
	}
	if sup.MaxRetries != 3 {
		t.Errorf("MaxRetries = %d, want default 3", sup.MaxRetries)
	}
	if sup.RetryBackoff != simtime.Millisecond {
		t.Errorf("RetryBackoff = %v, want default 1ms", sup.RetryBackoff)
	}
	if sup.RebaseEvery != 8 {
		t.Errorf("RebaseEvery = %d, want default 8", sup.RebaseEvery)
	}
}

// TestNewSupervisorPreservesExplicitChoices: defaults must not stomp
// deliberate values, including "negative disables retries".
func TestNewSupervisorPreservesExplicitChoices(t *testing.T) {
	prog := workload.Sparse{MiB: 1, WriteFrac: 0.2, Seed: 1}
	c := newCluster(t, 2, prog)
	cfg := validConfig(c, prog)
	cfg.MaxRetries = -1
	cfg.RetryBackoff = 7 * simtime.Millisecond
	cfg.RebaseEvery = 2
	sup, err := NewSupervisor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sup.MaxRetries != -1 {
		t.Errorf("MaxRetries = %d, want -1 (retries disabled)", sup.MaxRetries)
	}
	if sup.RetryBackoff != 7*simtime.Millisecond {
		t.Errorf("RetryBackoff = %v, want 7ms", sup.RetryBackoff)
	}
	if sup.RebaseEvery != 2 {
		t.Errorf("RebaseEvery = %d, want 2", sup.RebaseEvery)
	}
}

func TestNewSupervisorRejectsInvalidConfigs(t *testing.T) {
	prog := workload.Sparse{MiB: 1, WriteFrac: 0.2, Seed: 1}
	c := newCluster(t, 2, prog)
	cases := []struct {
		name   string
		mutate func(*SupervisorConfig)
		want   string
	}{
		{"nil cluster", func(cfg *SupervisorConfig) { cfg.C = nil }, "nil Cluster"},
		{"nil mkmech", func(cfg *SupervisorConfig) { cfg.MkMech = nil }, "nil MkMech"},
		{"nil prog", func(cfg *SupervisorConfig) { cfg.Prog = nil }, "nil Prog"},
		{"zero iterations", func(cfg *SupervisorConfig) { cfg.Iterations = 0 }, "zero Iterations"},
		{"no policy at all", func(cfg *SupervisorConfig) { cfg.Policy = policy.Spec{} }, "interval"},
		{"negative interval", func(cfg *SupervisorConfig) {
			cfg.Policy = policy.Fixed(-simtime.Millisecond)
		}, "interval"},
		{"zero policy interval", func(cfg *SupervisorConfig) {
			cfg.Policy = policy.Spec{Strategy: policy.StrategyYoungDaly}
		}, "interval"},
		{"unknown strategy", func(cfg *SupervisorConfig) {
			cfg.Policy = policy.Spec{Strategy: "sometimes", Interval: simtime.Millisecond}
		}, "unknown strategy"},
		{"policy plus deprecated interval", func(cfg *SupervisorConfig) {
			cfg.Interval = simtime.Millisecond
		}, "deprecated"},
		{"policy plus deprecated adaptive", func(cfg *SupervisorConfig) {
			cfg.Adaptive = true
		}, "deprecated"},
		{"inverted clamp", func(cfg *SupervisorConfig) {
			cfg.Policy = policy.Spec{
				Strategy:    policy.StrategyYoungDaly,
				Interval:    simtime.Millisecond,
				MinInterval: 4 * simtime.Millisecond,
				MaxInterval: 2 * simtime.Millisecond,
			}
		}, "min interval exceeds max"},
		{"control node high", func(cfg *SupervisorConfig) { cfg.ControlNode = 2 }, "ControlNode"},
		{"control node negative", func(cfg *SupervisorConfig) { cfg.ControlNode = -1 }, "ControlNode"},
		{"negative rebase", func(cfg *SupervisorConfig) { cfg.RebaseEvery = -1 }, "RebaseEvery"},
		{"pipeline without detector", func(cfg *SupervisorConfig) {
			cfg.Pipeline = &PipelineConfig{}
		}, "Detector"},
		{"pipeline negative in-flight", func(cfg *SupervisorConfig) {
			cfg.Pipeline = &PipelineConfig{MaxInFlight: -1}
		}, "MaxInFlight"},
		{"pipeline negative workers", func(cfg *SupervisorConfig) {
			cfg.Pipeline = &PipelineConfig{CaptureWorkers: -2}
		}, "CaptureWorkers"},
	}
	for _, tc := range cases {
		cfg := validConfig(c, prog)
		tc.mutate(&cfg)
		if _, err := NewSupervisor(cfg); err == nil {
			t.Errorf("%s: no error", tc.name)
		} else if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestDeprecatedIntervalAlias pins the deprecation contract: a config
// using the legacy Interval/Adaptive fields must behave identically to
// the policy.Spec it documents as its replacement — same resolved
// engine spec, and bit-identical run outcomes on the same seeded fault
// schedule. This is the one place the deprecated fields may appear.
func TestDeprecatedIntervalAlias(t *testing.T) {
	prog := workload.Sparse{MiB: 1, WriteFrac: 0.2, Seed: 9}
	run := func(mutate func(*SupervisorConfig)) *Supervisor {
		c := newClusterSeed(t, 3, 77, prog)
		c.SetInjector(NewInjector(Exponential{Mean: 20 * simtime.Millisecond}, 2*simtime.Millisecond, 5, 2))
		cfg := SupervisorConfig{
			C:          c,
			MkMech:     func() mechanism.Mechanism { return syslevel.NewCRAK() },
			Prog:       prog,
			Iterations: 40,
		}
		mutate(&cfg)
		sup, err := NewSupervisor(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := sup.Run(2 * simtime.Second); err != nil {
			t.Fatal(err)
		}
		if !sup.Completed {
			t.Fatal("job did not complete")
		}
		return sup
	}

	for name, pair := range map[string][2]func(*SupervisorConfig){
		"fixed": {
			func(cfg *SupervisorConfig) { cfg.Interval = 5 * simtime.Millisecond },
			func(cfg *SupervisorConfig) { cfg.Policy = policy.Fixed(5 * simtime.Millisecond) },
		},
		"adaptive": {
			func(cfg *SupervisorConfig) { cfg.Interval = 5 * simtime.Millisecond; cfg.Adaptive = true },
			func(cfg *SupervisorConfig) {
				cfg.Policy = policy.Spec{Strategy: policy.StrategyAdaptive, Interval: 5 * simtime.Millisecond}
			},
		},
	} {
		old := run(pair[0])
		neu := run(pair[1])
		if old.Policy.Spec() != neu.Policy.Spec() {
			t.Errorf("%s: resolved specs differ: %+v vs %+v", name, old.Policy.Spec(), neu.Policy.Spec())
		}
		if old.Fingerprint != neu.Fingerprint || old.Makespan != neu.Makespan ||
			old.Checkpoints != neu.Checkpoints || old.Restarts != neu.Restarts {
			t.Errorf("%s: legacy and policy runs diverged: fp %#x/%#x makespan %v/%v ckpts %d/%d restarts %d/%d",
				name, old.Fingerprint, neu.Fingerprint, old.Makespan, neu.Makespan,
				old.Checkpoints, neu.Checkpoints, old.Restarts, neu.Restarts)
		}
	}
}

func TestMustNewSupervisorPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNewSupervisor did not panic on an invalid config")
		}
	}()
	MustNewSupervisor(SupervisorConfig{})
}

func TestPipelineConfigDefaults(t *testing.T) {
	pc := &PipelineConfig{}
	if got := pc.maxInFlight(); got != 2 {
		t.Errorf("maxInFlight = %d, want 2", got)
	}
	if got := pc.captureWorkers(); got != 4 {
		t.Errorf("captureWorkers = %d, want 4", got)
	}
	if got := pc.batchBytes(); got != 1<<20 {
		t.Errorf("batchBytes = %d, want 1MiB", got)
	}
	disabled := &PipelineConfig{BatchBytes: -1}
	if got := disabled.batchBytes(); got != 0 {
		t.Errorf("batchBytes(-1) = %d, want 0 (disabled)", got)
	}
}
