// Shard supervisor: one event loop, one fence domain, one detector, one
// RNG, one counter slot — everything a shard touches during a tick is
// shard-local, which is what makes the per-shard goroutines race-free
// without locks and the whole run deterministic despite real
// parallelism. Cross-shard effects (job migration when a shard has no
// unsuspected member left) are requests handed to the root at the tick
// barrier, never direct writes into another shard.

package cluster

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/detector"
	"repro/internal/simtime"
	"repro/internal/storage"
	"repro/internal/trace"
)

// gcKeep is how many committed checkpoints a job keeps before the shard
// retires the oldest.
const gcKeep = 2

// fleetJob is one supervised job: its placement, the fence epoch its
// writer incarnation holds, and its live checkpoint chain.
type fleetJob struct {
	id    int
	node  int
	epoch uint64
	seq   int
	tgt   storage.Target
	last  string
	objs  []string
}

// ghostWriter is a superseded incarnation that does not know it was
// failed over — the node was falsely suspected, so the old process is
// still running and still trying to publish. Epoch fencing is what
// makes it harmless: its next publish must be rejected.
type ghostWriter struct {
	job   int
	node  int
	epoch uint64
	tgt   storage.Target
}

// inflightDigest is one digest on its way from the shard's aggregation
// point to the shard supervisor's detector.
type inflightDigest struct {
	at simtime.Time
	d  *detector.Digest
}

// shardSup is one shard supervisor. Fields are touched only by its own
// event loop during a tick, and only by the root at the barrier.
type shardSup struct {
	id   int
	root *RootSupervisor
	base int
	n    int

	prefix string // object-name namespace, "s<id>/"
	fence  *storage.FenceDomain
	store  *storage.Memory
	det    detector.Detector
	ingest *detector.DigestIngest
	rng    *rand.Rand
	ctr    *trace.Counters
	timer  *fleetTimer

	seq       uint64
	tick      int
	inflight  []inflightDigest
	suspected []bool
	credited  []bool
	rr        int // round-robin placement cursor

	jobs   []*fleetJob // sorted by id
	ghosts []*ghostWriter

	batch      []Event
	askMigrate []*fleetJob

	tickCh chan simtime.Time
	doneCh chan struct{}
}

func newShardSup(root *RootSupervisor, id, base, n int) *shardSup {
	ctr := root.SC.Shard(id)
	sh := &shardSup{
		id: id, root: root, base: base, n: n,
		prefix:    fmt.Sprintf("s%03d/", id),
		store:     storage.NewMemory(fmt.Sprintf("shard-%03d", id), nil),
		det:       detector.NewTimeout(root.cfg.DetectAfter),
		rng:       rand.New(rand.NewSource(root.cfg.Seed ^ int64(uint64(id+1)*0x9e3779b97f4a7c15))),
		ctr:       ctr,
		suspected: make([]bool, n),
		credited:  make([]bool, n),
		tickCh:    make(chan simtime.Time),
		doneCh:    make(chan struct{}),
	}
	sh.fence = storage.NewFenceDomain(fmt.Sprintf("shard-%03d", id), ctr)
	sh.ingest = detector.NewDigestIngest(sh.det, ctr)
	for i := 0; i < n; i++ {
		sh.ingest.Prime(base+i, 0)
	}
	// The digest tick is the shard's ONLY recurring timer: member
	// heartbeats are folded into the digest build rather than arming a
	// per-node timer each.
	sh.timer = root.f.registerTimer(fmt.Sprintf("shard-%03d digest", id), root.cfg.Tick)
	return sh
}

// loop is the shard's event loop goroutine: it processes one tick per
// barrier cycle and exits when the tick channel closes.
func (sh *shardSup) loop() {
	for now := range sh.tickCh {
		sh.runTick(now)
		sh.doneCh <- struct{}{}
	}
	close(sh.doneCh)
}

// member returns the global node id of member offset i.
func (sh *shardSup) member(i int) int { return sh.base + i }

// isSuspected reports the shard detector's verdict for a global node id
// owned by this shard.
func (sh *shardSup) isSuspected(node int) bool {
	off := node - sh.base
	return off >= 0 && off < sh.n && sh.suspected[off]
}

// unsuspectedCount is the shard's spare capacity signal for root
// placement decisions.
func (sh *shardSup) unsuspectedCount() int {
	n := 0
	for _, s := range sh.suspected {
		if !s {
			n++
		}
	}
	return n
}

// writerTarget binds a writer handle for epoch; with fencing disabled
// it is the raw store — the broken build the double-commit invariant
// must catch.
func (sh *shardSup) writerTarget(epoch uint64) storage.Target {
	if sh.root.cfg.NoFencing {
		return sh.store
	}
	return storage.FencedAt(sh.store, sh.fence, epoch)
}

// objName names a checkpoint object inside this shard's namespace.
func (sh *shardSup) objName(job int, epoch uint64, seq int) string {
	return fmt.Sprintf("%sj%06d/e%d-%06d", sh.prefix, job, epoch, seq)
}

// emit appends one orchestration event to the tick's outgoing batch.
func (sh *shardSup) emit(now simtime.Time, kind EventKind, node int, epoch uint64, object string) {
	sh.batch = append(sh.batch, Event{At: now, Kind: kind, Node: node, Epoch: epoch, Object: object})
}

// runTick is one shard tick: deliver due digests, re-evaluate
// suspicion, fail over jobs on suspected members, publish due
// checkpoints, let ghost writers run into the fence, and emit this
// tick's digest.
func (sh *shardSup) runTick(now simtime.Time) {
	sh.tick++
	sh.timer.next = sh.timer.next.Add(sh.timer.period)
	sh.deliverDigests(now)
	sh.evaluate(now)
	sh.failover(now)
	sh.checkpoint(now)
	sh.pumpGhosts(now)
	sh.emitDigest(now)
}

// deliverDigests feeds every digest whose delivery time has arrived to
// the shard detector, in order.
func (sh *shardSup) deliverDigests(now simtime.Time) {
	kept := sh.inflight[:0]
	for _, in := range sh.inflight {
		if in.at <= now {
			sh.ingest.Observe(in.d, now)
		} else {
			kept = append(kept, in)
		}
	}
	sh.inflight = kept
}

// evaluate re-judges every member and accounts transitions against
// ground truth (accounting only — the verdict itself is digest-driven).
func (sh *shardSup) evaluate(now simtime.Time) {
	f := sh.root.f
	for i := 0; i < sh.n; i++ {
		node := sh.member(i)
		s := sh.det.Suspected(node, now)
		if s == sh.suspected[i] {
			continue
		}
		sh.suspected[i] = s
		if s {
			sh.ctr.Inc("det.suspicions", 1)
			if !f.alive[node] && !sh.credited[i] {
				sh.credited[i] = true
				sh.ctr.Inc("det.detections", 1)
				sh.root.detectHist.Observe(now.Sub(f.downAt[node]).Millis())
			} else if f.alive[node] {
				sh.ctr.Inc("det.false_positives", 1)
			}
		} else {
			sh.ctr.Inc("det.recoveries", 1)
		}
	}
}

// failover moves jobs off suspected members. The first failover of a
// tick advances the shard's fence epoch — fencing every superseded
// writer — and the loop then re-admits the shard's surviving jobs at
// the new epoch (shard-generation fencing: safe because one event loop
// owns the whole shard, so re-admission is atomic with the advance).
// Jobs with no unsuspected member left are handed to the root for
// cross-shard migration.
func (sh *shardSup) failover(now simtime.Time) {
	f := sh.root.f
	advanced := false
	var epoch uint64
	kept := sh.jobs[:0]
	for _, job := range sh.jobs {
		if !sh.isSuspected(job.node) {
			kept = append(kept, job)
			continue
		}
		if !advanced {
			advanced = true
			epoch = sh.fence.Advance()
		}
		old, oldEpoch := job.node, job.epoch
		sh.ctr.Inc("fleet.failovers", 1)
		sh.emit(now, EvFailover, old, epoch, "")
		if f.alive[old] {
			// False suspicion: the old incarnation is still running and
			// will keep publishing until the fence kills it.
			sh.ghosts = append(sh.ghosts, &ghostWriter{
				job: job.id, node: old, epoch: oldEpoch, tgt: sh.writerTarget(oldEpoch),
			})
		} else {
			sh.root.failoverHist.Observe(now.Sub(f.downAt[old]).Millis())
		}
		cand := sh.pickMember()
		if cand < 0 {
			job.epoch = epoch
			sh.askMigrate = append(sh.askMigrate, job)
			continue
		}
		job.node, job.epoch, job.tgt = cand, epoch, sh.writerTarget(epoch)
		sh.emit(now, EvAdmit, cand, epoch, "")
		if job.last != "" {
			// The " lazy" marker rides in the event's Object field (the
			// restored leaf's name stays the prefix); FleetViolations keys
			// only off EvStaleCommit/EvAck/EvRetire objects, so the suffix
			// is observable without disturbing any invariant.
			if sh.root.cfg.LazyRestore {
				sh.ctr.Inc("fleet.lazy_restores", 1)
				sh.emit(now, EvRestore, cand, epoch, job.last+" lazy")
			} else {
				sh.emit(now, EvRestore, cand, epoch, job.last)
			}
		} else {
			sh.emit(now, EvScratch, cand, epoch, "")
		}
		kept = append(kept, job)
	}
	sh.jobs = kept
	if advanced {
		// Re-admit every surviving writer at the new epoch so the shard
		// advance fences only the superseded incarnations.
		for _, job := range sh.jobs {
			if job.epoch != epoch {
				job.epoch, job.tgt = epoch, sh.writerTarget(epoch)
				sh.ctr.Inc("fence.readmits", 1)
			}
		}
	}
}

// pickMember round-robins over unsuspected members; -1 when none.
func (sh *shardSup) pickMember() int {
	for k := 0; k < sh.n; k++ {
		i := (sh.rr + k) % sh.n
		if !sh.suspected[i] {
			sh.rr = (i + 1) % sh.n
			return sh.member(i)
		}
	}
	return -1
}

// checkpoint publishes due jobs' checkpoints through their fenced
// writer handles and garbage-collects superseded chain entries.
func (sh *shardSup) checkpoint(now simtime.Time) {
	f := sh.root.f
	every := sh.root.cfg.CkptEvery
	for _, job := range sh.jobs {
		if (sh.tick+job.id)%every != 0 {
			continue
		}
		// Node-local code runs only on live machines; a dead node's
		// writer is silent until failover re-places the job.
		if !f.alive[job.node] || sh.isSuspected(job.node) {
			continue
		}
		job.seq++
		obj := sh.objName(job.id, job.epoch, job.seq)
		if err := storage.Write(job.tgt, obj, ckptPayload(job.id, job.seq), storage.WriteOptions{Atomic: true}); err != nil {
			if errors.Is(err, storage.ErrFenced) {
				// Structurally impossible shard-locally (re-admission is
				// atomic with the epoch advance); counted so a regression
				// shows up in the digest.
				sh.ctr.Inc("fence.unexpected", 1)
			} else {
				sh.ctr.Inc("ckpt.errors", 1)
			}
			continue
		}
		sh.ctr.Inc("fleet.ckpt_acks", 1)
		job.last = obj
		job.objs = append(job.objs, obj)
		sh.emit(now, EvAck, job.node, job.epoch, obj)
		for len(job.objs) > gcKeep {
			sh.retire(now, job, job.objs[0])
			job.objs = job.objs[1:]
		}
	}
}

// retire garbage-collects one superseded checkpoint through the job's
// fenced handle. The prefix guard is the shard-isolation invariant:
// shard-local GC must never touch another shard's chains, whatever name
// it is handed.
func (sh *shardSup) retire(now simtime.Time, job *fleetJob, obj string) {
	if !strings.HasPrefix(obj, sh.prefix) {
		sh.ctr.Inc("fence.gc_foreign", 1)
		return
	}
	if err := job.tgt.Delete(obj); err != nil {
		sh.ctr.Inc("fleet.gc_errors", 1)
		return
	}
	sh.emit(now, EvRetire, job.node, job.epoch, obj)
}

// pumpGhosts lets every superseded incarnation attempt its next publish.
// With fencing on, the epoch check rejects it and the incarnation
// self-fences; with fencing off the publish LANDS — the split-brain
// double commit the scenario invariants must catch.
func (sh *shardSup) pumpGhosts(now simtime.Time) {
	f := sh.root.f
	kept := sh.ghosts[:0]
	for _, g := range sh.ghosts {
		if !f.alive[g.node] {
			// The falsely-suspected machine has since really died; the
			// ghost dies with it.
			continue
		}
		obj := sh.objName(g.job, g.epoch, 1<<20+sh.tick)
		err := storage.Write(g.tgt, obj, ckptPayload(g.job, -1), storage.WriteOptions{Atomic: true})
		switch {
		case err == nil:
			sh.ctr.Inc("fence.double_commits", 1)
			sh.emit(now, EvStaleCommit, g.node, g.epoch, obj)
		case errors.Is(err, storage.ErrFenced):
			sh.ctr.Inc("fence.self_fence", 1)
			sh.emit(now, EvSelfFence, g.node, g.epoch, "")
		default:
			kept = append(kept, g) // transient storage trouble: try again
		}
	}
	sh.ghosts = kept
}

// emitDigest builds this tick's heartbeat digest — one message for the
// whole shard — and sends it toward the shard detector through the
// digest fault model (loss, duplication, jitter).
func (sh *shardSup) emitDigest(now simtime.Time) {
	if sh.n == 0 {
		return
	}
	cfg := sh.root.cfg
	f := sh.root.f
	d := detector.NewDigest(sh.id, sh.base, sh.n)
	for i := 0; i < sh.n; i++ {
		if !f.alive[sh.member(i)] {
			continue // a dead machine contributes no heartbeat
		}
		if cfg.HBLoss > 0 && sh.rng.Float64() < cfg.HBLoss {
			sh.ctr.Inc("net.hb_lost", 1)
			continue
		}
		d.MarkPresent(i, now)
	}
	sh.seq++
	d.Seq, d.SentAt = sh.seq, now
	if cfg.DigestLoss > 0 && sh.rng.Float64() < cfg.DigestLoss {
		sh.ctr.Inc("net.digest_lost", 1)
		return
	}
	sh.schedule(d, now)
	if cfg.DigestDup > 0 && sh.rng.Float64() < cfg.DigestDup {
		sh.ctr.Inc("net.digest_dup_sent", 1)
		sh.schedule(d, now)
	}
}

// schedule enqueues one digest delivery with transfer delay and jitter,
// keeping the in-flight queue ordered by delivery time (late arrivals
// from a jittery send land behind newer fast ones — exactly the
// out-of-order case DigestIngest counts).
func (sh *shardSup) schedule(d *detector.Digest, now simtime.Time) {
	cfg := sh.root.cfg
	delay := cfg.Tick / 4
	if cfg.DigestJitter > 0 {
		delay += simtime.Duration(sh.rng.Int63n(int64(cfg.DigestJitter)))
	}
	in := inflightDigest{at: now.Add(delay), d: d}
	pos := len(sh.inflight)
	for pos > 0 && sh.inflight[pos-1].at > in.at {
		pos--
	}
	sh.inflight = append(sh.inflight, inflightDigest{})
	copy(sh.inflight[pos+1:], sh.inflight[pos:])
	sh.inflight[pos] = in
}

// ckptPayload is a small deterministic checkpoint body.
func ckptPayload(job, seq int) []byte {
	b := make([]byte, 96)
	for i := range b {
		b[i] = byte(job + seq + i)
	}
	return b
}
