// Cluster-side replication policy: where checkpoint replicas live, how
// the supervisor's agents write through them, and how redundancy is
// rebuilt when a replica holder dies. The storage layer's Replicated
// target (internal/storage) knows how to fan a write out and walk a
// degraded-read ladder; this file decides the placement set — self +
// buddy pairs on other failure domains, or k-of-n erasure shards across
// node-local disks — and keeps it healthy across failovers.
//
// Placement is anchored at the job's current node (the owner). In buddy
// mode the owner's own disk comes first, then the buddies' disks reached
// over the wire, then the shared checkpoint server: the write pays the
// interconnect for the buddy copies, the restore reads the nearest
// surviving copy. In erasure mode the object is cut into k data + m
// parity shards, one per node-local disk (slot index = shard index), and
// the server holds nothing — full redundancy at a fraction of the
// mirrored capacity, the §4.1 trade.

package cluster

import (
	"errors"
	"fmt"

	"repro/internal/simtime"
	"repro/internal/storage"
	"repro/internal/storage/erasure"
)

// ReplicationMode selects the redundancy scheme.
type ReplicationMode string

const (
	// ReplBuddy mirrors every checkpoint to the owner's disk, one or more
	// buddy nodes' disks, and the shared server.
	ReplBuddy ReplicationMode = "buddy"
	// ReplErasure cuts every checkpoint into DataShards+ParityShards
	// erasure shards, one per node-local disk. The server holds nothing.
	ReplErasure ReplicationMode = "erasure"
)

// ReplicationConfig is the supervisor's placement policy. Nil disables
// replication (checkpoints go to the shared server only, as before).
// Autonomic mode only: placement follows the detector's suspicions.
type ReplicationConfig struct {
	// Mode selects buddy mirroring or erasure coding. Required.
	Mode ReplicationMode
	// Buddies is how many buddy nodes mirror the checkpoint in ReplBuddy
	// mode (default 1 — the classic buddy pair).
	Buddies int
	// DataShards/ParityShards is the ReplErasure geometry (default 2+1:
	// any single shard loss is survivable at 1.5x capacity).
	DataShards   int
	ParityShards int
	// WriteQuorum overrides how many replicas must durably publish before
	// a checkpoint is acknowledged. 0 uses the storage defaults: 2 for
	// buddy sets, DataShards+1 for erasure sets.
	WriteQuorum int
	// RepairAfter is how long a replica holder must stay suspected before
	// its slot is reassigned to a fresh node and re-replicated (default:
	// one checkpoint interval). Too low re-buddies on every network blip;
	// too high widens the window where a second failure is fatal.
	RepairAfter simtime.Duration
	// FailureDomain maps a node index to its failure domain (rack, PSU).
	// Buddy assignment prefers a different domain than the owner's, so a
	// domain-wide outage cannot take both copies. Default: node % 2.
	FailureDomain func(node int) int
}

func (rc *ReplicationConfig) buddies() int {
	if rc.Buddies > 0 {
		return rc.Buddies
	}
	return 1
}

func (rc *ReplicationConfig) dataShards() int {
	if rc.DataShards > 0 {
		return rc.DataShards
	}
	return 2
}

func (rc *ReplicationConfig) parityShards() int {
	if rc.ParityShards > 0 {
		return rc.ParityShards
	}
	return 1
}

func (rc *ReplicationConfig) repairAfter(interval simtime.Duration) simtime.Duration {
	if rc.RepairAfter > 0 {
		return rc.RepairAfter
	}
	return interval
}

func (rc *ReplicationConfig) failureDomain() func(int) int {
	if rc.FailureDomain != nil {
		return rc.FailureDomain
	}
	return func(node int) int { return node % 2 }
}

// validate rejects geometries the cluster cannot place. workers is how
// many nodes can hold job state (every node except the control node).
func (rc *ReplicationConfig) validate(workers int) error {
	switch rc.Mode {
	case ReplBuddy, ReplErasure:
	default:
		return fmt.Errorf("cluster: ReplicationConfig: unknown Mode %q", rc.Mode)
	}
	if rc.Buddies < 0 || rc.DataShards < 0 || rc.ParityShards < 0 ||
		rc.WriteQuorum < 0 || rc.RepairAfter < 0 {
		return errors.New("cluster: ReplicationConfig: negative field")
	}
	switch rc.Mode {
	case ReplBuddy:
		if rc.buddies()+1 > workers {
			return fmt.Errorf("cluster: ReplicationConfig: %d buddies need %d worker nodes, have %d",
				rc.buddies(), rc.buddies()+1, workers)
		}
		// Slots: owner + buddies + server.
		if n := rc.buddies() + 2; rc.WriteQuorum > n {
			return fmt.Errorf("cluster: ReplicationConfig: WriteQuorum %d exceeds %d replicas", rc.WriteQuorum, n)
		}
	case ReplErasure:
		k, m := rc.dataShards(), rc.parityShards()
		if k+m > workers {
			return fmt.Errorf("cluster: ReplicationConfig: erasure geometry %d+%d needs %d worker nodes, have %d",
				k, m, k+m, workers)
		}
		if rc.WriteQuorum != 0 && (rc.WriteQuorum < k || rc.WriteQuorum > k+m) {
			return fmt.Errorf("cluster: ReplicationConfig: erasure WriteQuorum %d outside [%d,%d]",
				rc.WriteQuorum, k, k+m)
		}
	}
	return nil
}

// replSlot is one placement slot: a worker node's disk, or the shared
// server (node -1). In erasure mode the slot index is the shard index.
type replSlot struct {
	node int
	role storage.ReplicaRole
}

// replState is the supervisor's live placement, anchored at the current
// owner and mutated only by failover (recomputed) and slot reassignment.
type replState struct {
	owner        int
	slots        []replSlot
	downSince    map[int]simtime.Time // suspected slot holder -> first seen
	nextRepairAt simtime.Time
}

// buddyCandidates orders the worker nodes other than owner for placement:
// unsuspected nodes on a different failure domain first (a co-failing
// buddy protects nothing), then unsuspected same-domain, then suspected
// ones as a last resort — erasure geometries need their exact slot count
// even when the cluster is degraded.
func (s *Supervisor) buddyCandidates(owner int) []int {
	dom := s.Replication.failureDomain()
	var crossUp, sameUp, crossDown, sameDown []int
	for i := 0; i < s.C.NumNodes(); i++ {
		if i == owner || i == s.ControlNode {
			continue
		}
		suspected := s.Detector != nil && s.Detector.Suspected(i)
		cross := dom(i) != dom(owner)
		switch {
		case cross && !suspected:
			crossUp = append(crossUp, i)
		case !suspected:
			sameUp = append(sameUp, i)
		case cross:
			crossDown = append(crossDown, i)
		default:
			sameDown = append(sameDown, i)
		}
	}
	out := append(crossUp, sameUp...)
	out = append(out, crossDown...)
	return append(out, sameDown...)
}

// placementFor computes the slot set for a job owned by owner.
func (s *Supervisor) placementFor(owner int) []replSlot {
	rc := s.Replication
	if rc.Mode == ReplErasure {
		n := rc.dataShards() + rc.parityShards()
		slots := make([]replSlot, 0, n)
		slots = append(slots, replSlot{owner, storage.RoleShard})
		for _, cand := range s.buddyCandidates(owner) {
			if len(slots) == n {
				break
			}
			slots = append(slots, replSlot{cand, storage.RoleShard})
		}
		return slots
	}
	slots := make([]replSlot, 0, rc.buddies()+2)
	slots = append(slots, replSlot{owner, storage.RoleLocal})
	for _, cand := range s.buddyCandidates(owner) {
		if len(slots) == rc.buddies()+1 {
			break
		}
		slots = append(slots, replSlot{cand, storage.RoleBuddy})
	}
	return append(slots, replSlot{-1, storage.RoleRemote})
}

// ensurePlacement (re)anchors the placement at owner. A failover changes
// the owner, so the first capture of the new incarnation recomputes the
// whole set; mid-incarnation the placement only changes one slot at a
// time, through reassignDeadSlots.
func (s *Supervisor) ensurePlacement(owner int) {
	if s.repl == nil {
		s.repl = &replState{owner: -1, downSince: make(map[int]simtime.Time)}
	}
	if s.repl.slots != nil && s.repl.owner == owner {
		return
	}
	s.repl.owner = owner
	s.repl.slots = s.placementFor(owner)
	s.repl.downSince = make(map[int]simtime.Time)
}

// slotTarget resolves a slot to a concrete target as seen from node
// `from`: its own disk directly, another node's disk over the wire, the
// shared server through the node's client.
func (s *Supervisor) slotTarget(sl replSlot, from int) storage.Target {
	switch {
	case sl.node < 0:
		return s.C.Node(from).Remote()
	case sl.node == from:
		return s.C.Node(sl.node).Disk
	default:
		return storage.OverWire(s.C.Node(sl.node).Disk, s.C.CM)
	}
}

// buildReplicated assembles the storage.Replicated target over the given
// slots. Each member is fence-wrapped individually (when fenced), so a
// stale-epoch writer is rejected at every replica's commit point — the
// fence contract's replicated form.
func (s *Supervisor) buildReplicated(slots []replSlot, from int, epoch uint64, fenced bool) (*storage.Replicated, error) {
	rc := s.Replication
	reps := make([]storage.Replica, len(slots))
	for i, sl := range slots {
		t := s.slotTarget(sl, from)
		if fenced {
			t = storage.FencedAt(t, s.Fence, epoch)
		}
		reps[i] = storage.Replica{T: t, Role: sl.role}
	}
	cfg := storage.ReplicatedConfig{
		Quorum:   rc.WriteQuorum,
		Counters: s.Counters,
		Metrics:  s.Metrics,
	}
	if rc.Mode == ReplErasure {
		cfg.DataShards = rc.dataShards()
		cfg.ParityShards = rc.parityShards()
	}
	return storage.NewReplicated("repl", reps, cfg)
}

// shipTarget is the one place an agent's publish target is built: the
// plain fenced server client without replication, or the fenced
// replicated set over the current placement with it. Both the synchronous
// pump and the pipelined publishUnit go through here.
func (s *Supervisor) shipTarget(a *ckptAgent) storage.Target {
	fence := func(t storage.Target) storage.Target {
		if s.NoFencing {
			return t
		}
		return storage.FencedAt(t, s.Fence, a.epoch)
	}
	if s.Replication == nil {
		return fence(s.C.Node(a.node).Remote())
	}
	s.ensurePlacement(a.node)
	r, err := s.buildReplicated(s.repl.slots, a.node, a.epoch, !s.NoFencing)
	if err != nil {
		// Geometry was validated at construction; this is unreachable, but
		// degrading to the server path beats dropping the checkpoint.
		return fence(s.C.Node(a.node).Remote())
	}
	return r
}

// recoveryTarget is the read side of restore-from-nearest-surviving-
// replica: the replica set as seen from the restore node, ordered so the
// ladder tries its own disk first, then the other surviving holders over
// the wire, then the server. The placement is the one the acked chain was
// written under — recoverFenced calls this before the new incarnation
// re-anchors placement at the spare. Reads are unfenced (the fence guards
// mutations); a mirror set needs any one survivor, an erasure set any k.
func (s *Supervisor) recoveryTarget(spare int) storage.Target {
	if s.Replication == nil || s.repl == nil || len(s.repl.slots) == 0 {
		return s.C.Node(spare).Remote()
	}
	rc := s.Replication
	if rc.Mode == ReplErasure {
		// Slot order is shard identity: never reorder.
		reps := make([]storage.Replica, len(s.repl.slots))
		for i, sl := range s.repl.slots {
			reps[i] = storage.Replica{T: s.slotTarget(sl, spare), Role: storage.RoleShard}
		}
		r, err := storage.NewReplicated("repl-restore", reps, storage.ReplicatedConfig{
			Quorum: rc.dataShards(), DataShards: rc.dataShards(), ParityShards: rc.parityShards(),
			Counters: s.Counters, Metrics: s.Metrics,
		})
		if err != nil {
			return s.C.Node(spare).Remote()
		}
		return r
	}
	var reps []storage.Replica
	for _, sl := range s.repl.slots {
		if sl.node == spare {
			reps = append(reps, storage.Replica{T: s.C.Node(spare).Disk, Role: storage.RoleLocal})
		}
	}
	for _, sl := range s.repl.slots {
		if sl.node >= 0 && sl.node != spare {
			reps = append(reps, storage.Replica{
				T: storage.OverWire(s.C.Node(sl.node).Disk, s.C.CM), Role: storage.RoleBuddy})
		}
	}
	reps = append(reps, storage.Replica{T: s.C.Node(spare).Remote(), Role: storage.RoleRemote})
	r, err := storage.NewReplicated("repl-restore", reps, storage.ReplicatedConfig{
		Quorum: 1, Counters: s.Counters, Metrics: s.Metrics,
	})
	if err != nil {
		return s.C.Node(spare).Remote()
	}
	return r
}

// pickRestoreNode chooses where the next incarnation runs. With
// replication, an unsuspected replica holder is preferred — it restores
// from its own disk instead of pulling the image across the wire (the
// buddy scheme's whole read-side payoff). Otherwise, and as the
// fallback, the detector picks any unsuspected node.
func (s *Supervisor) pickRestoreNode(failed int) int {
	if s.Replication != nil && s.repl != nil {
		for _, sl := range s.repl.slots {
			if sl.node < 0 || sl.node == failed || sl.node == s.ControlNode {
				continue
			}
			if !s.Detector.Suspected(sl.node) {
				return sl.node
			}
		}
	}
	return s.Detector.PickHealthy(failed)
}

// repairCadence is how often the background re-replication sweep runs.
func (s *Supervisor) repairCadence() simtime.Duration {
	d := s.Policy.Base() / 4
	if d < simtime.Millisecond {
		d = simtime.Millisecond
	}
	return d
}

// maybeRepair is the background re-replication sweep, run from the agent
// pump loop: reassign placement slots whose holder has been suspected
// past RepairAfter, then restore full redundancy for every live chain
// object that is missing from a reachable slot. Repair writes go through
// the current-epoch fenced replicated target, so a sweep raced by a
// failover is rejected at the replicas instead of resurrecting state for
// a superseded incarnation. Like compaction, the sweep is modeled as
// off-critical-path background I/O: it charges no agent time.
func (s *Supervisor) maybeRepair() {
	if s.Replication == nil || s.repl == nil || len(s.agents) == 0 {
		return
	}
	now := s.C.Now()
	if now < s.repl.nextRepairAt {
		return
	}
	s.repl.nextRepairAt = now.Add(s.repairCadence())
	s.repairSweep(now)
}

// flushRepair runs one unconditional sweep — called when the job
// completes, so checkpoints acked between the last cadenced sweep and
// completion reach every replica slot before anyone audits (or reuses)
// the placement.
func (s *Supervisor) flushRepair() {
	if s.Replication == nil || s.repl == nil {
		return
	}
	s.repairSweep(s.C.Now())
}

// repairSweep is one pass of the re-replication loop: reassign slots
// whose holder the detector has given up on, then restore redundancy for
// every degraded live-chain object.
func (s *Supervisor) repairSweep(now simtime.Time) {
	s.reassignDeadSlots(now)
	if len(s.chainObjs) == 0 {
		return
	}
	r, err := s.buildReplicated(s.repl.slots, s.repl.owner, s.Fence.Epoch(), !s.NoFencing)
	if err != nil {
		return
	}
	repaired := 0
	for _, obj := range append([]string(nil), s.chainObjs...) {
		want := s.chainSizes[obj]
		if !s.objectDegraded(r, obj, want) {
			continue
		}
		n, rerr := r.RepairSized(obj, want, storage.NopEnv())
		repaired += n
		if rerr != nil {
			if errors.Is(rerr, storage.ErrNotFound) {
				continue // retired or compacted out from under the sweep
			}
			s.Counters.Inc("repl.repair_failed", 1)
			break
		}
	}
	if repaired > 0 {
		s.emit(EvRepair, s.repl.owner, s.Fence.Epoch(), fmt.Sprintf("%d", repaired))
	}
}

// objectDegraded reports whether any reachable replica slot is missing
// its copy (or shard) of obj — the cheap presence probe that keeps the
// steady-state sweep from re-reading every chain object every round.
// With the authoritative encoded length known (want > 0) the probe also
// flags a present-but-wrong-sized copy: the stale leaf a quorum fold
// publish left behind on the member it missed. A divergence at equal
// size slips past this probe, but the read ladder's checksum/decode
// validation still refuses it at restore time.
func (s *Supervisor) objectDegraded(r *storage.Replicated, obj string, want int) bool {
	wantLen := want
	if k, _, on := r.Erasure(); on && want > 0 {
		wantLen = erasure.ShardLen(want, k)
	}
	for _, rep := range r.Replicas() {
		if !rep.T.Available() {
			continue
		}
		n, err := rep.T.ObjectSize(obj)
		if err != nil || (wantLen > 0 && n != wantLen) {
			return true
		}
	}
	return false
}

// reassignDeadSlots replaces replica holders the detector has suspected
// continuously for RepairAfter. The suspicion clock per node starts at
// the first sweep that sees it suspected and resets if the suspicion
// clears — a flapping link does not shuffle placement. The owner's slot
// is never reassigned here; owner death is a failover, which recomputes
// the whole placement.
func (s *Supervisor) reassignDeadSlots(now simtime.Time) {
	after := s.Replication.repairAfter(s.Policy.Base())
	for i := range s.repl.slots {
		sl := &s.repl.slots[i]
		if sl.node < 0 || sl.node == s.repl.owner {
			continue
		}
		if !s.Detector.Suspected(sl.node) {
			delete(s.repl.downSince, sl.node)
			continue
		}
		since, seen := s.repl.downSince[sl.node]
		if !seen {
			s.repl.downSince[sl.node] = now
			continue
		}
		if now.Sub(since) < after {
			continue
		}
		next := s.pickReplacement()
		if next < 0 {
			continue // nothing healthy to move to; keep watching
		}
		old := sl.node
		sl.node = next
		delete(s.repl.downSince, old)
		s.Counters.Inc("repl.rebuddy", 1)
		s.emit(EvRebuddy, next, s.Fence.Epoch(), fmt.Sprintf("slot=%d from=%d", i, old))
	}
}

// pickReplacement returns an unsuspected worker node not already holding
// a slot, or -1.
func (s *Supervisor) pickReplacement() int {
	inUse := map[int]bool{s.repl.owner: true}
	for _, sl := range s.repl.slots {
		if sl.node >= 0 {
			inUse[sl.node] = true
		}
	}
	for _, cand := range s.buddyCandidates(s.repl.owner) {
		if !inUse[cand] && !s.Detector.Suspected(cand) {
			return cand
		}
	}
	return -1
}

// ReplicationMode returns the active mode, or "" without replication.
func (s *Supervisor) ReplicationMode() ReplicationMode {
	if s.Replication == nil {
		return ""
	}
	return s.Replication.Mode
}

// ReplicaPlacement returns the current slot-to-node assignment (-1 is
// the shared server), or nil before the first placement. The chaos
// harness's replication checkers audit durability against it.
func (s *Supervisor) ReplicaPlacement() []int {
	if s.repl == nil || s.repl.slots == nil {
		return nil
	}
	out := make([]int, len(s.repl.slots))
	for i, sl := range s.repl.slots {
		out[i] = sl.node
	}
	return out
}

// ReplicationGeometry returns the erasure geometry (0,0 for buddy mode
// or no replication).
func (s *Supervisor) ReplicationGeometry() (k, m int) {
	if s.Replication == nil || s.Replication.Mode != ReplErasure {
		return 0, 0
	}
	return s.Replication.dataShards(), s.Replication.parityShards()
}

// ChainObjects returns a copy of the live chain's acked object names,
// oldest first.
func (s *Supervisor) ChainObjects() []string {
	return append([]string(nil), s.chainObjs...)
}
