// Fleet-scale control plane: the event-loop-per-shard architecture that
// takes the supervisor from the 3–6 node chaos topologies to 10,000
// simulated nodes. The full cluster simulation (kernels, processes,
// page-accurate checkpoints) is the wrong substrate at that scale — its
// fidelity is per-node machinery the control plane never looks at. The
// fleet model keeps exactly what the orchestration layer observes:
// ground-truth node liveness (for accounting), per-shard heartbeat
// digests over a lossy delaying network (the only failure signal on the
// decision path), per-shard fence domains over real storage targets
// (stale writers really are rejected by the epoch check), and the
// orchestration event log. A RootSupervisor owns placement across N
// shard supervisors; each shard runs its own event loop goroutine,
// detector, RNG, counters, and fence domain, synchronized only at a
// per-tick barrier — so the concurrency is real (the -race suite runs
// cross-shard migrations and simultaneous failovers) while runs stay
// deterministic: shard state is shard-local during a tick, and the root
// merges shard output in fixed shard order at the barrier.
//
// Nothing in this file reads the wall clock; orchestration throughput
// in real time is measured by the scenario harness around Run.

package cluster

import (
	"fmt"
	"math/rand"

	"repro/internal/simtime"
)

// FleetConfig sizes a fleet run.
type FleetConfig struct {
	// Nodes is the simulated machine count; Shards how many shard
	// supervisors the root splits them into (contiguous ranges).
	Nodes  int
	Shards int
	// Seed drives every RNG in the run (per-shard RNGs derive from it).
	Seed int64
	// Tick is the digest tick: each shard aggregates its members'
	// heartbeats into ONE digest per tick (default 1ms). This is also
	// the only recurring timer a shard arms — member heartbeats
	// amortize into the digest build instead of one timer per node.
	Tick simtime.Duration
	// DetectAfter is the per-member timeout bound of each shard's
	// failure detector (default 4*Tick).
	DetectAfter simtime.Duration
	// Jobs is the number of concurrently supervised jobs (default
	// Nodes/10, min 1), spread round-robin across shards.
	Jobs int
	// CkptEvery is the per-job checkpoint cadence in ticks (default 8),
	// staggered by job id so acks spread across ticks.
	CkptEvery int
	// EventBatch bounds one orchestration-event flush from a shard to
	// the root (default 256).
	EventBatch int

	// Control-plane network faults, applied to the digest path: HBLoss
	// drops a member's bit from a tick's digest, DigestLoss drops the
	// whole digest, DigestDup delivers it twice, DigestJitter adds a
	// uniform extra delivery delay.
	HBLoss       float64
	DigestLoss   float64
	DigestDup    float64
	DigestJitter simtime.Duration

	// NoFencing disables epoch fencing for superseded incarnations —
	// the deliberately-broken knob that must make the double-commit
	// invariant fire in the scenario harness.
	NoFencing bool

	// LazyRestore marks every failover restore as restart-before-read:
	// the EvRestore event carries a " lazy" object suffix and the shard
	// counts fleet.lazy_restores, so scenario criteria can assert the
	// lazy path was exercised fleet-wide.
	LazyRestore bool
}

// withDefaults fills zero fields.
func (cfg FleetConfig) withDefaults() FleetConfig {
	if cfg.Tick <= 0 {
		cfg.Tick = simtime.Millisecond
	}
	if cfg.DetectAfter <= 0 {
		cfg.DetectAfter = 4 * cfg.Tick
	}
	if cfg.Jobs <= 0 {
		cfg.Jobs = cfg.Nodes / 10
		if cfg.Jobs < 1 {
			cfg.Jobs = 1
		}
	}
	if cfg.CkptEvery <= 0 {
		cfg.CkptEvery = 8
	}
	if cfg.EventBatch <= 0 {
		cfg.EventBatch = 256
	}
	return cfg
}

// validate rejects configurations the fleet cannot run.
func (cfg FleetConfig) validate() error {
	if cfg.Nodes < 2 {
		return fmt.Errorf("cluster: fleet needs >= 2 nodes, got %d", cfg.Nodes)
	}
	if cfg.Shards < 1 || cfg.Shards > cfg.Nodes {
		return fmt.Errorf("cluster: fleet shards %d outside [1,%d]", cfg.Shards, cfg.Nodes)
	}
	if cfg.Jobs > cfg.Nodes {
		return fmt.Errorf("cluster: %d jobs exceed %d nodes", cfg.Jobs, cfg.Nodes)
	}
	if cfg.HBLoss < 0 || cfg.HBLoss >= 1 || cfg.DigestLoss < 0 || cfg.DigestLoss >= 1 || cfg.DigestDup < 0 || cfg.DigestDup >= 1 {
		return fmt.Errorf("cluster: fleet fault probabilities must be in [0,1)")
	}
	return nil
}

// fleetTimer is one armed recurring control-plane timer. The registry
// exists so tests can pin the timer budget: the naive design arms one
// heartbeat timer per node (10k nodes = 10k timers); the digest design
// arms exactly one per shard, independent of member count.
type fleetTimer struct {
	owner  string
	period simtime.Duration
	next   simtime.Time
}

// fleetFault is one scheduled ground-truth node failure.
type fleetFault struct {
	at     simtime.Time
	node   int
	perm   bool
	repair simtime.Duration
}

// fleetReboot is one pending ground-truth reboot.
type fleetReboot struct {
	at   simtime.Time
	node int
}

// Fleet is the ground-truth substrate of a fleet run: node liveness,
// the fault schedule, and the timer registry. Only the root mutates it,
// and only at the tick barrier; shard loops read it for node-local
// gating (a dead machine emits no heartbeat and runs no writer) and for
// metrics accounting — never for placement or suspicion decisions.
type Fleet struct {
	cfg     FleetConfig
	now     simtime.Time
	alive   []bool
	downAt  []simtime.Time
	perm    []bool
	rng     *rand.Rand
	timers  []*fleetTimer
	faults  []fleetFault
	reboots []fleetReboot
}

func newFleet(cfg FleetConfig) *Fleet {
	f := &Fleet{
		cfg:    cfg,
		alive:  make([]bool, cfg.Nodes),
		downAt: make([]simtime.Time, cfg.Nodes),
		perm:   make([]bool, cfg.Nodes),
		rng:    rand.New(rand.NewSource(cfg.Seed)),
	}
	for i := range f.alive {
		f.alive[i] = true
	}
	return f
}

// Now returns the fleet's simulated time.
func (f *Fleet) Now() simtime.Time { return f.now }

// NodeAlive reports ground-truth liveness (accounting and node-local
// gating only).
func (f *Fleet) NodeAlive(i int) bool { return f.alive[i] }

// registerTimer records one armed recurring timer.
func (f *Fleet) registerTimer(owner string, period simtime.Duration) *fleetTimer {
	t := &fleetTimer{owner: owner, period: period, next: f.now.Add(period)}
	f.timers = append(f.timers, t)
	return t
}

// Timers returns how many recurring control-plane timers are armed.
// The digest architecture keeps this at one per shard regardless of
// node count — the regression tests pin it.
func (f *Fleet) Timers() int { return len(f.timers) }

// FleetStats is the machine-readable outcome of one fleet run.
type FleetStats struct {
	Nodes  int `json:"nodes"`
	Shards int `json:"shards"`
	Jobs   int `json:"jobs"`
	Ticks  int `json:"ticks"`

	SimMillis float64 `json:"sim_ms"`

	// Orchestration event flow: total events flushed, flush batches,
	// and the largest single batch (bounded by EventBatch).
	Events   int `json:"events"`
	Batches  int `json:"batches"`
	MaxBatch int `json:"max_batch"`

	Checkpoints int64 `json:"checkpoints"`
	Failovers   int64 `json:"failovers"`
	Migrations  int64 `json:"migrations"`
	Unplaced    int64 `json:"unplaced"`

	// Detection and failover latency in simulated milliseconds, over
	// ground-truth real failures only.
	Detections  int     `json:"detections"`
	DetectP50   float64 `json:"detect_p50_ms"`
	DetectP99   float64 `json:"detect_p99_ms"`
	FailoverP50 float64 `json:"failover_p50_ms"`
	FailoverP99 float64 `json:"failover_p99_ms"`

	FalsePositives int64 `json:"false_positives"`
	SelfFences     int64 `json:"self_fences"`
	DoubleCommits  int64 `json:"double_commits"`

	// Timers is the armed recurring-timer count (one per shard).
	Timers int `json:"timers"`
}

// String renders the headline numbers.
func (s FleetStats) String() string {
	return fmt.Sprintf(
		"fleet %d nodes / %d shards / %d jobs: %d events in %d batches over %.0f sim-ms; "+
			"ckpts=%d failovers=%d migrations=%d; detect p50/p99 %.2f/%.2f ms; timers=%d",
		s.Nodes, s.Shards, s.Jobs, s.Events, s.Batches, s.SimMillis,
		s.Checkpoints, s.Failovers, s.Migrations, s.DetectP50, s.DetectP99, s.Timers)
}
