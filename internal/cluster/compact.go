// Supervisor-driven chain compaction. RebaseEvery bounds a chain by
// periodically shipping a fresh full image over the interconnect — the
// agent pays for the bound. Compaction bounds it from the storage side:
// when the live chain accumulates more than CompactAfter deltas, the
// supervisor folds the whole chain into one full image directly on the
// server (storage.CompactChain with checkpoint.FoldEncodedChain as the
// fold) and retires the folded deltas. No capture traffic is spent, and
// the next failover replays at most CompactAfter deltas regardless of
// how long the incarnation has been running.

package cluster

import (
	"errors"

	"repro/internal/checkpoint"
	"repro/internal/storage"
)

// maybeCompact folds the live chain when a delta ack has pushed it past
// the CompactAfter bound. It runs through the acking agent's fenced
// target, so a stale incarnation's compactor is rejected exactly like
// its publishes; the folded image keeps the leaf's object name, so the
// recovery pointer (lastLeaf) and any in-flight child's Parent link are
// untouched. Compaction is server-side background work off the job's
// critical path: no Env is billed, only the orchestration counters and
// event log record it.
func (s *Supervisor) maybeCompact(a *ckptAgent, tgt storage.Target) {
	if s.CompactAfter <= 0 || len(s.chainObjs)-1 <= s.CompactAfter {
		return
	}
	// Compaction retires the folded deltas — exactly the ancestors a
	// draining lazy session would read for its deferred plan. Settle the
	// session before the server mutates the chain (no-op when none).
	s.settleLazy()
	objs := append([]string(nil), s.chainObjs...)
	st, err := storage.CompactChain(tgt, objs, checkpoint.FoldEncodedChain, nil)
	if st.Folded == "" {
		// Nothing changed on the server (read, fold, or publish failed —
		// a fenced publish included): the chain stays as it was and the
		// next ack retries. lastLeaf still resolves, so this is purely a
		// missed optimization, never lost protection.
		s.Counters.Inc("compact.failed", 1)
		return
	}
	// The fold is durable under the leaf's name: the chain is now that
	// single full image, whatever became of the GC below.
	s.Counters.Inc("compact.folds", 1)
	s.Counters.Inc("compact.folded_deltas", int64(st.Deltas))
	s.Counters.Inc("compact.bytes_written", int64(st.BytesOut))
	s.emit(EvCompact, a.node, a.epoch, st.Folded)
	s.chainObjs = []string{st.Folded}
	s.chainSizes = map[string]int{st.Folded: st.BytesOut}
	s.lastFull = st.Folded
	for _, o := range st.Deleted {
		s.Counters.Inc("ckpt.retired", 1)
		s.emit(EvRetire, a.node, a.epoch, o)
	}
	if err == nil {
		return
	}
	if errors.Is(err, storage.ErrFenced) {
		// Superseded mid-sweep: the garbage belongs to the live
		// incarnation now (same rule as retire()).
		s.Counters.Inc("fence.gc_rejected", 1)
		return
	}
	// Transient storage trouble after the durable fold: queue the
	// undeleted ancestors for the sweep after the next full ack.
	s.Counters.Inc("ckpt.gc_deferred", 1)
	s.pendingRetire = append(s.pendingRetire, st.Pending...)
}
