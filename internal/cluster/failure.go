package cluster

import (
	"math"
	"math/rand"
	"sort"

	"repro/internal/policy"
	"repro/internal/simtime"
)

// FailureModel generates inter-failure times. Fail-stop semantics [33]
// are assumed throughout: a failure is always detected and takes the
// whole node down.
type FailureModel interface {
	// NextGap draws the time to the next failure.
	NextGap(rng *rand.Rand) simtime.Duration
	// MTBF returns the model's mean time between failures.
	MTBF() simtime.Duration
}

// Exponential is the memoryless failure model (constant hazard rate),
// the standard assumption behind Young's formula.
type Exponential struct {
	Mean simtime.Duration
}

// NextGap implements FailureModel.
func (e Exponential) NextGap(rng *rand.Rand) simtime.Duration {
	return simtime.Duration(rng.ExpFloat64() * float64(e.Mean))
}

// MTBF implements FailureModel.
func (e Exponential) MTBF() simtime.Duration { return e.Mean }

// Weibull models wear-out (Shape > 1) or infant mortality (Shape < 1);
// Shape = 1 degenerates to Exponential.
type Weibull struct {
	Scale simtime.Duration
	Shape float64
}

// NextGap implements FailureModel.
func (w Weibull) NextGap(rng *rand.Rand) simtime.Duration {
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	return simtime.Duration(float64(w.Scale) * math.Pow(-math.Log(u), 1/w.Shape))
}

// MTBF implements FailureModel.
func (w Weibull) MTBF() simtime.Duration {
	return simtime.Duration(float64(w.Scale) * math.Gamma(1+1/w.Shape))
}

// FailureKind distinguishes the two cases §4.1 separates for local
// storage: a transient failure (power outage / reboot — the local disk
// comes back with its data) and a permanent one (the node is replaced —
// local checkpoints are gone for good).
type FailureKind uint8

// Failure kinds.
const (
	Transient FailureKind = iota
	Permanent
)

// Injector schedules fail-stop failures on a detailed cluster.
type Injector struct {
	Model      FailureModel
	RepairTime simtime.Duration
	// PermanentFrac is the fraction of failures that are permanent.
	PermanentFrac float64
	// OnFail is invoked after a node goes down.
	OnFail func(c *Cluster, node int, kind FailureKind)

	rng     *rand.Rand
	pending []injEvent
}

type injEvent struct {
	at     simtime.Time
	node   int
	reboot bool
	kind   FailureKind
}

// NewInjector builds an injector and pre-schedules the first failure for
// each node of an n-node cluster.
func NewInjector(model FailureModel, repair simtime.Duration, seed int64, nodes int) *Injector {
	inj := &Injector{Model: model, RepairTime: repair, rng: rand.New(rand.NewSource(seed))}
	for i := 0; i < nodes; i++ {
		inj.scheduleNext(i, 0)
	}
	return inj
}

func (inj *Injector) scheduleNext(node int, now simtime.Time) {
	inj.pending = append(inj.pending, injEvent{
		at:   now.Add(inj.Model.NextGap(inj.rng)),
		node: node,
	})
	sort.Slice(inj.pending, func(i, j int) bool { return inj.pending[i].at < inj.pending[j].at })
}

// apply fires all events due at the cluster barrier.
func (inj *Injector) apply(c *Cluster) {
	for len(inj.pending) > 0 && inj.pending[0].at <= c.now {
		ev := inj.pending[0]
		inj.pending = inj.pending[1:]
		if ev.reboot {
			c.Reboot(ev.node)
			inj.scheduleNext(ev.node, c.now)
			continue
		}
		if !c.nodes[ev.node].alive {
			continue
		}
		// The kind is drawn at fire time so a PermanentFrac set after
		// construction governs every failure, including the pre-scheduled
		// first one per node.
		ev.kind = Transient
		if inj.rng.Float64() < inj.PermanentFrac {
			ev.kind = Permanent
		}
		c.FailKind(ev.node, ev.kind)
		if ev.kind == Transient {
			inj.pending = append(inj.pending, injEvent{at: c.now.Add(inj.RepairTime), node: ev.node, reboot: true})
			sort.Slice(inj.pending, func(i, j int) bool { return inj.pending[i].at < inj.pending[j].at })
		}
		if inj.OnFail != nil {
			inj.OnFail(c, ev.node, ev.kind)
		}
	}
}

// The interval formulas and the online MTBF estimator moved to
// internal/policy with the policy.Spec redesign; the names below are
// kept so existing callers (repro.YoungInterval, the analytic model's
// tests, the examples) keep working unchanged.

// YoungInterval is Young's first-order optimum for the checkpoint
// interval: sqrt(2 · checkpointCost · MTBF).
func YoungInterval(ckptCost, mtbf simtime.Duration) simtime.Duration {
	return policy.Young(ckptCost, mtbf)
}

// DalyInterval is Daly's higher-order refinement, accurate when the
// checkpoint cost is not negligible next to the MTBF.
func DalyInterval(ckptCost, mtbf simtime.Duration) simtime.Duration {
	return policy.Daly(ckptCost, mtbf)
}

// MTBFEstimator is the autonomic manager's online failure-rate tracker:
// the maximum-likelihood exponential estimate uptime/failures, with an
// optimistic prior before the first failure.
type MTBFEstimator = policy.MTBFEstimator

// NewMTBFEstimator returns an estimator with the given prior MTBF.
func NewMTBFEstimator(prior simtime.Duration) *MTBFEstimator {
	return policy.NewMTBFEstimator(prior)
}
