package cluster

import (
	"math/rand"

	"repro/internal/policy"
	"repro/internal/simtime"
)

// StoragePolicy is where the analytic job writes its checkpoints —
// Table 1's storage column turned into a fault-tolerance policy.
type StoragePolicy uint8

// Storage policies.
const (
	// StoreNone: no checkpointing at all; every failure restarts from zero.
	StoreNone StoragePolicy = iota
	// StoreLocal: node-local disk; survives transient failures (reboot)
	// but not permanent ones (node replaced — "checkpoint data cannot be
	// retrieved in case of a failure of the machine", §4.1).
	StoreLocal
	// StoreRemote: the checkpoint server; survives both.
	StoreRemote
)

func (s StoragePolicy) String() string {
	switch s {
	case StoreLocal:
		return "local"
	case StoreRemote:
		return "remote"
	}
	return "none"
}

// JobConfig describes an analytic job run.
type JobConfig struct {
	// Work is the failure-free compute time the job needs.
	Work simtime.Duration
	// CkptCost is the time to take and store one checkpoint.
	CkptCost simtime.Duration
	// RestartCost is the time to load a checkpoint and resume.
	RestartCost simtime.Duration
	// RepairTime is node downtime after a failure before work resumes
	// (reboot, or re-allocation to a spare).
	RepairTime simtime.Duration
	// Policy is the checkpoint cadence policy, consulted before every
	// segment with the estimator's live state (policy.Fixed for the
	// classic configured interval, policy.AdaptiveYoung for §1's
	// re-derive-every-segment behaviour). A zero Spec disables
	// checkpointing.
	Policy policy.Spec
	// Storage is the checkpoint placement policy.
	Storage StoragePolicy
	// PermanentFrac is the fraction of failures that destroy the node
	// (and with it any local checkpoints).
	PermanentFrac float64
	// MaxTime aborts runs that exceed this makespan (0 = 1000× Work).
	MaxTime simtime.Duration
	// PriorMTBF seeds the estimator.
	PriorMTBF simtime.Duration
}

// JobResult summarizes one analytic run.
type JobResult struct {
	Completed    bool
	Makespan     simtime.Duration
	Failures     int
	Checkpoints  int
	Restarts     int
	LostWork     simtime.Duration
	CkptOverhead simtime.Duration
	// Utilization is Work/Makespan ∈ (0,1].
	Utilization float64
}

// SimulateJob runs the analytic model: compute in checkpoint-delimited
// segments, draw fail-stop failures from the model, and resolve each
// failure against the storage policy.
func SimulateJob(cfg JobConfig, fm FailureModel, rng *rand.Rand) JobResult {
	maxTime := cfg.MaxTime
	if maxTime == 0 {
		maxTime = 1000 * cfg.Work
	}
	est := NewMTBFEstimator(cfg.PriorMTBF)
	if est.Prior == 0 {
		est.Prior = fm.MTBF()
	}

	var res JobResult
	now := simtime.Duration(0)
	durable := simtime.Duration(0) // work secured by the last usable checkpoint
	nextFail := fm.NextGap(rng)

	for durable < cfg.Work {
		if now > maxTime {
			res.Makespan = now
			return res
		}
		// Choose the next segment.
		var seg simtime.Duration
		ckptAfter := false
		if !cfg.Policy.Enabled() {
			seg = cfg.Work - durable
		} else {
			iv := cfg.Policy.IntervalFor(cfg.CkptCost, est.Estimate())
			if iv <= 0 {
				iv = cfg.Work
			}
			seg = iv
			if seg >= cfg.Work-durable {
				seg = cfg.Work - durable
			} else {
				ckptAfter = true
			}
		}
		segSpan := seg
		if ckptAfter {
			segSpan += cfg.CkptCost
		}

		if nextFail < now+segSpan {
			// Failure mid-segment (or mid-checkpoint).
			ran := nextFail - now
			if ran < 0 {
				ran = 0
			}
			workDone := ran
			if workDone > seg {
				workDone = seg // checkpoint writing adds no work
			}
			est.ObserveUptime(ran)
			est.ObserveFailure()
			res.Failures++
			res.LostWork += workDone

			permanent := rng.Float64() < cfg.PermanentFrac
			switch {
			case cfg.Storage == StoreNone,
				cfg.Storage == StoreLocal && permanent:
				// All progress (and for local: the checkpoints too) is gone.
				res.LostWork += durable
				durable = 0
			}
			now = nextFail + cfg.RepairTime
			if durable > 0 {
				now += cfg.RestartCost
				res.Restarts++
			}
			nextFail = now + fm.NextGap(rng)
			continue
		}

		// Segment (and checkpoint) completed failure-free.
		now += segSpan
		est.ObserveUptime(segSpan)
		durable += seg
		if ckptAfter {
			res.Checkpoints++
			res.CkptOverhead += cfg.CkptCost
		}
	}
	res.Completed = true
	res.Makespan = now
	if now > 0 {
		res.Utilization = float64(cfg.Work) / float64(now)
	}
	return res
}

// AverageResult runs SimulateJob n times and averages the numeric fields;
// Completed is true only if every run completed.
func AverageResult(cfg JobConfig, fm FailureModel, seed int64, n int) JobResult {
	var agg JobResult
	agg.Completed = true
	for i := 0; i < n; i++ {
		rng := rand.New(rand.NewSource(seed + int64(i)*104729))
		r := SimulateJob(cfg, fm, rng)
		agg.Makespan += r.Makespan
		agg.Failures += r.Failures
		agg.Checkpoints += r.Checkpoints
		agg.Restarts += r.Restarts
		agg.LostWork += r.LostWork
		agg.CkptOverhead += r.CkptOverhead
		agg.Utilization += r.Utilization
		agg.Completed = agg.Completed && r.Completed
	}
	agg.Makespan /= simtime.Duration(n)
	agg.LostWork /= simtime.Duration(n)
	agg.CkptOverhead /= simtime.Duration(n)
	agg.Utilization /= float64(n)
	return agg
}
