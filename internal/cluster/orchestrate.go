package cluster

import (
	"errors"
	"fmt"

	"repro/internal/checkpoint"
	"repro/internal/costmodel"
	"repro/internal/mechanism"
	"repro/internal/policy"
	"repro/internal/simos/kernel"
	"repro/internal/simos/proc"
	"repro/internal/simtime"
	"repro/internal/storage"
	"repro/internal/trace"
)

// FailureDetector is the suspicion service an autonomic supervisor
// consults instead of the simulator's fail-stop oracle. It is
// implemented by detector.Monitor; the interface lives here so cluster
// does not import detector (which imports nothing of cluster either —
// both meet at this seam and at detector.Transport).
type FailureDetector interface {
	// Suspected reports whether node is currently suspected dead.
	Suspected(node int) bool
	// PickHealthy returns an unsuspected node other than except (and
	// other than the detector's own observer node), or -1.
	PickHealthy(except int) int
	// Failover records that the caller acted on a suspicion of node.
	Failover(node int)
}

// ErrSuspected is returned by detector-gated operations whose endpoint
// is currently suspected dead.
var ErrSuspected = errors.New("cluster: node is suspected by the failure detector")

// MechPool caches one mechanism instance per node (mechanisms bind to a
// single kernel, so cross-node operations need one instance per machine).
type MechPool struct {
	C      *Cluster
	Mk     func() mechanism.Mechanism
	byNode map[int]mechanism.Mechanism
}

// NewMechPool wraps a mechanism factory for use across c's nodes.
func NewMechPool(c *Cluster, mk func() mechanism.Mechanism) *MechPool {
	return &MechPool{C: c, Mk: mk, byNode: make(map[int]mechanism.Mechanism)}
}

// For returns the node's mechanism, installing it on first use.
func (mp *MechPool) For(node int) (mechanism.Mechanism, error) {
	if m, ok := mp.byNode[node]; ok {
		return m, nil
	}
	m := mp.Mk()
	if err := m.Install(mp.C.Node(node).K); err != nil {
		return nil, err
	}
	mp.byNode[node] = m
	return m, nil
}

// Migrate moves a process between nodes with the pool's mechanism (the
// CRAK/ZAP/BProc use case): checkpoint on the source, ship the image,
// kill the original, restart on the destination.
func Migrate(c *Cluster, pool *MechPool, from, to int, pid proc.PID) (*proc.Process, error) {
	return MigrateWith(c, pool, from, to, pid, nil)
}

// MigrateWith is Migrate gated by a failure detector: when det is
// non-nil a suspected endpoint aborts the migration with ErrSuspected
// before any capture work, instead of the oracle liveness check.
func MigrateWith(c *Cluster, pool *MechPool, from, to int, pid proc.PID, det FailureDetector) (*proc.Process, error) {
	src, dst := c.Node(from), c.Node(to)
	if det != nil {
		if det.Suspected(from) || det.Suspected(to) {
			return nil, fmt.Errorf("cluster: migrate %d->%d: %w", from, to, ErrSuspected)
		}
	} else if !src.Alive() || !dst.Alive() {
		return nil, errors.New("cluster: migration endpoints must be alive")
	}
	p, err := src.K.Procs.Lookup(pid)
	if err != nil {
		return nil, err
	}
	ms, err := pool.For(from)
	if err != nil {
		return nil, err
	}
	tk, err := mechanism.Checkpoint(ms, src.K, p, nil, nil)
	if err != nil {
		return nil, fmt.Errorf("cluster: migrate capture: %w", err)
	}
	// Ship the image across the interconnect.
	data, err := tk.Img.EncodeBytes()
	if err != nil {
		return nil, err
	}
	c.RunFor(c.CM.NetTransfer(len(data)))

	// Restart on the destination first and only then kill the source:
	// if the restart fails the original keeps running (it has merely
	// rolled on past the captured state). The pre-fix order exited the
	// source before attempting the restart, so a restart failure lost
	// the process entirely.
	md, err := pool.For(to)
	if err != nil {
		return nil, err
	}
	p2, err := md.Restart(dst.K, []*checkpoint.Image{tk.Img}, true)
	if err != nil {
		return nil, fmt.Errorf("cluster: migrate restart (source %s/%d kept running): %w", src.Name, pid, err)
	}
	// No simulated time passes between the restart and the kill, so the
	// two copies never run concurrently.
	if p.State != proc.StateZombie {
		src.K.Exit(p, 0)
	}
	src.K.Procs.Remove(p.PID)
	return p2, nil
}

// GangMember is one process of a gang-scheduled parallel job.
type GangMember struct {
	Node int
	PID  proc.PID
}

// Gang is a coscheduled set of processes that can be preempted safely via
// checkpoint/restart — the "safe pre-emption by another process" and
// "temporary suspension of a long-running application for planned system
// outage or maintenance" uses of §1.
type Gang struct {
	C       *Cluster
	MkMech  func() mechanism.Mechanism
	Members []GangMember
	// Det, when set, vetoes preemption/resume touching a suspected node
	// (ErrSuspected) — the gang controller trusts the detector, not the
	// simulator's oracle.
	Det FailureDetector

	mechs  map[int]mechanism.Mechanism
	images map[int]*checkpoint.Image // keyed by member index
	frozen bool
}

// NewGang wraps a member set for safe preemption.
func NewGang(c *Cluster, mk func() mechanism.Mechanism, members []GangMember) *Gang {
	return &Gang{
		C: c, MkMech: mk, Members: members,
		mechs:  make(map[int]mechanism.Mechanism),
		images: make(map[int]*checkpoint.Image),
	}
}

func (g *Gang) mech(node int) (mechanism.Mechanism, error) {
	if m, ok := g.mechs[node]; ok {
		return m, nil
	}
	m := g.MkMech()
	if err := m.Install(g.C.Node(node).K); err != nil {
		return nil, err
	}
	g.mechs[node] = m
	return m, nil
}

// Preempt checkpoints every member and kills it, freeing the nodes for
// another job. Checkpoints go to each node's local disk via the
// mechanism's native path.
//
// Preemption is two-phase: every member is captured first and nothing is
// killed until all images are in hand. A capture failure therefore leaves
// the whole gang running and the Gang unfrozen — the caller can retry.
// (The pre-fix single loop killed members as it went, so a mid-loop error
// left the gang half-dead with frozen still false: earlier members were
// gone but could not be resumed.)
func (g *Gang) Preempt() error {
	if g.frozen {
		return errors.New("cluster: gang already preempted")
	}
	type captured struct {
		img *checkpoint.Image
		n   *Node
		p   *proc.Process
	}
	caps := make([]captured, len(g.Members))
	for i, mb := range g.Members {
		if g.Det != nil && g.Det.Suspected(mb.Node) {
			return fmt.Errorf("cluster: gang preempt member %d on node %d: %w", i, mb.Node, ErrSuspected)
		}
		n := g.C.Node(mb.Node)
		m, err := g.mech(mb.Node)
		if err != nil {
			return err
		}
		p, err := n.K.Procs.Lookup(mb.PID)
		if err != nil {
			return err
		}
		tk, err := mechanism.Checkpoint(m, n.K, p, nil, nil)
		if err != nil {
			return fmt.Errorf("cluster: gang preempt member %d (gang left running): %w", i, err)
		}
		caps[i] = captured{tk.Img, n, p}
	}
	for i, c := range caps {
		g.images[i] = c.img
		c.n.K.Exit(c.p, 0)
		c.n.K.Procs.Remove(c.p.PID)
	}
	g.frozen = true
	return nil
}

// Resume restarts every member on its node, returning the new processes
// in Members order (PIDs are per-node and may repeat across nodes).
func (g *Gang) Resume() ([]*proc.Process, error) {
	if !g.frozen {
		return nil, errors.New("cluster: gang not preempted")
	}
	out := make([]*proc.Process, 0, len(g.Members))
	for i, mb := range g.Members {
		if g.Det != nil && g.Det.Suspected(mb.Node) {
			return nil, fmt.Errorf("cluster: gang resume member %d on node %d: %w", i, mb.Node, ErrSuspected)
		}
		img := g.images[i]
		if img == nil {
			return nil, fmt.Errorf("cluster: no image for member %d", i)
		}
		m, err := g.mech(mb.Node)
		if err != nil {
			return nil, err
		}
		p, err := m.Restart(g.C.Node(mb.Node).K, []*checkpoint.Image{img}, true)
		if err != nil {
			return nil, fmt.Errorf("cluster: gang resume member %d: %w", i, err)
		}
		out = append(out, p)
	}
	g.frozen = false
	g.images = make(map[int]*checkpoint.Image)
	return out, nil
}

// Supervisor runs one application to completion on a detailed cluster
// under fail-stop failures: it checkpoints periodically through a real
// mechanism to the checkpoint server (or local disk) and restarts the job
// on a spare node after failures — the whole §1 story end to end.
type Supervisor struct {
	C      *Cluster
	MkMech func() mechanism.Mechanism
	Prog   kernel.Program
	// Iterations bounds the workload.
	Iterations uint64
	// Policy is the job's checkpoint policy engine: it owns the cadence
	// (fixed, or recomputed from measured capture cost and the online
	// MTBF estimate) and the delta content policy. NewSupervisor always
	// provides one; Run refuses to start without it.
	Policy *policy.Engine
	// UseLocalDisk stores checkpoints on the running node instead of the
	// server — the E5 contrast.
	UseLocalDisk bool
	// Estimator is the policy engine's MTBF estimator, exposed for
	// callers that read Failures/Estimate directly.
	Estimator *MTBFEstimator

	// MaxRetries bounds per-round checkpoint retries against the primary
	// target (0 means the default of 3; negative disables retries).
	MaxRetries int
	// RetryBackoff is the first retry delay, doubled per attempt (default
	// 1ms of simulated time).
	RetryBackoff simtime.Duration
	// LocalFallback writes the round's checkpoint to the node-local disk
	// when every retry against the remote server fails — degraded
	// protection (the image dies with the node) beats none.
	LocalFallback bool
	// UnsafeCommit disables atomic image commit (legacy in-place writes)
	// — the torn-image contrast for experiments and tests.
	UnsafeCommit bool
	// Incremental makes the node-local agents ship delta chains: each
	// incarnation arms a dirty-page tracker and publishes only the pages
	// written since the previous checkpoint, chained onto it. Requires a
	// mechanism implementing mechanism.DeltaRequester; others silently
	// fall back to full images. Autonomic mode only.
	Incremental bool
	// RebaseEvery bounds the chain when Incremental is set: every Nth
	// checkpoint is a fresh full image (default 8), bounding both restore
	// latency and the blast radius of a lost delta. The first checkpoint
	// of every incarnation is always full — chains never span
	// incarnations.
	RebaseEvery int
	// Counters receives ckpt.* orchestration counters (defaults to the
	// cluster's shared counter set).
	Counters *trace.Counters
	// Metrics layers latency histograms (pipe.publish_latency) over
	// Counters. NewSupervisor always provides one; with literal
	// construction it may be nil, in which case distributions are simply
	// not recorded.
	Metrics *trace.Metrics

	// Detector switches Run into autonomic mode: liveness verdicts come
	// from heartbeat-driven suspicion instead of the simulator's
	// fail-stop oracle, checkpoints are taken by node-local agents, and
	// every failover is fenced through Fence.
	Detector FailureDetector
	// Fence is the job's epoch domain (created by Run when nil). Each
	// incarnation publishes through a target fenced at its admission
	// epoch; Advance-before-restart makes a stale incarnation's commits
	// rejectable no matter how wrong the suspicion was.
	Fence *storage.FenceDomain
	// NoFencing disables the fenced target — the split-brain contrast.
	// Double commits by stale incarnations then succeed and are counted
	// under fence.double_commits.
	NoFencing bool
	// ControlNode is where the supervisor (and its status probes)
	// originate in autonomic mode; it should match the detector's
	// observer node. The job is never placed there.
	ControlNode int
	// Pipeline, when non-nil, makes the node-local agents capture into
	// memory and ship asynchronously through a bounded in-flight queue,
	// overlapping capture of epoch N+1 with the transfer of epoch N (see
	// pipeline.go). Autonomic mode only.
	Pipeline *PipelineConfig
	// Replication, when non-nil, fans every checkpoint out to a placement
	// set (buddy mirrors or erasure shards — see replication.go) and
	// restores from the nearest surviving replica. Autonomic mode only.
	Replication *ReplicationConfig
	// CompactAfter, when positive with Incremental, bounds the live chain
	// on the server: whenever an ack leaves more than CompactAfter deltas
	// behind the full head, the supervisor folds the chain into a fresh
	// full image under the leaf's own name (storage.CompactChain) and
	// retires the folded deltas. Unlike RebaseEvery — which bounds the
	// chain by making the agent ship a periodic full — compaction is
	// server-side: no capture traffic, and restore never replays more
	// than CompactAfter deltas. Autonomic mode only; 0 disables.
	CompactAfter int
	// RestoreWorkers shards chain replay on every restart through
	// mechanism.RestoreParallelizer (0 = follow the pipeline's capture
	// width, or sequential without a pipeline). Restored memory is
	// byte-identical at any width.
	RestoreWorkers int
	// LazyRestore switches autonomic failover to restart-before-read
	// (see lazy.go): only the leaf image is read before the job resumes;
	// the rest of the chain materializes on demand and via a background
	// prefetcher. Requires a mechanism implementing
	// mechanism.LazyRestarter; others fall back to eager restarts. The
	// fully drained memory is byte-identical to an eager restore.
	LazyRestore bool
	// OracleReads counts decision-path reads of simulator ground truth
	// (Alive / direct process-table inspection). Autonomic mode performs
	// none: its tests assert this stays zero.
	OracleReads int

	// Events is the orchestration event log (see events.go); OnEvent,
	// when set, additionally receives each event as it is emitted — the
	// chaos harness's invariant checkers observe the run through it.
	Events  []Event
	OnEvent func(Event)

	node      int
	pid       proc.PID
	mechAt    map[int]nodeMech
	lastLeaf  string
	lastNode  int
	lastLocal bool // last good image is on lastNode's local disk
	// lastProgressAt is the last instant the job's durable state moved
	// forward (admission, ack, or restart) — the baseline the
	// policy.work_lost histogram measures each failure against.
	lastProgressAt simtime.Time
	agents         []*ckptAgent
	repl           *replState // live replica placement (replication.go)
	lazy           *lazyRun   // in-flight lazy restore session (lazy.go)

	// Chain bookkeeping (incremental shipping). lastFull is the newest
	// acked full image — the fallback anchor when the chain under
	// lastLeaf will not load. chainObjs lists the live chain's acked
	// objects oldest-first; pendingRetire holds superseded chains that
	// become deletable only once the next full ack makes them
	// unreachable from the recovery pointer.
	lastFull      string
	chainObjs     []string
	pendingRetire []string

	// chainSizes maps each live-chain object to its authoritative encoded
	// length (EncodedBytes at ack, BytesOut at fold). The repair sweep
	// uses it to tell a stale replica copy — right name, wrong version,
	// the residue of a quorum publish that missed a member — from a
	// healthy one: presence probes alone cannot see that divergence.
	chainSizes map[string]int

	// Results
	Completed   bool
	Fingerprint uint64
	Makespan    simtime.Duration
	Checkpoints int
	Restarts    int
	FromScratch int // restarts that lost all progress (local disk gone)
}

// Run drives the cluster until the job completes or the budget elapses.
// With a Detector set it runs autonomically (suspicion-driven, fenced);
// otherwise it uses the classic oracle loop, whose ground-truth reads
// are tallied in OracleReads for comparison.
func (s *Supervisor) Run(budget simtime.Duration) error {
	if s.Policy == nil {
		return errors.New("cluster: Supervisor needs a policy engine — construct with NewSupervisor")
	}
	if s.Estimator == nil {
		s.Estimator = s.Policy.Estimator()
	}
	if s.Counters == nil {
		s.Counters = s.C.Counters
	}
	if s.Detector != nil {
		return s.runAutonomic(budget)
	}
	s.mechAt = make(map[int]nodeMech)
	start := s.C.Now()
	if err := s.start(0); err != nil {
		return err
	}
	deadline := s.C.Now().Add(budget)
	lastObs := s.C.Now()
	for s.C.Now() < deadline {
		s.C.RunFor(s.agentInterval())
		s.Policy.ObserveUptime(s.C.Now().Sub(lastObs))
		lastObs = s.C.Now()

		n := s.C.Node(s.node)
		// Both reads below are simulator ground truth a real supervisor
		// would not have; the autonomic loop replaces them.
		s.OracleReads++
		if !n.Alive() {
			s.noteFailure()
			if err := s.recover(); err != nil {
				return err
			}
			continue
		}
		s.OracleReads++
		p, err := n.K.Procs.Lookup(s.pid)
		if err != nil {
			// The node failed AND rebooted within the interval: the fresh
			// kernel has no trace of the job.
			s.noteFailure()
			if err := s.recover(); err != nil {
				return err
			}
			continue
		}
		if p.State == proc.StateZombie && p.ExitCode != 0 {
			// Killed by a failure we did not observe directly.
			s.noteFailure()
			if err := s.recover(); err != nil {
				return err
			}
			continue
		}
		if p.State == proc.StateZombie {
			s.Completed = true
			s.Fingerprint = p.Regs().G[3]
			s.Makespan = s.C.Now().Sub(start)
			s.emit(EvComplete, s.node, 0, fmt.Sprintf("%#x", s.Fingerprint))
			return nil
		}
		if err := s.checkpoint(p); err != nil {
			// Storage unavailable mid-failure: retry next round.
			continue
		}
	}
	s.Makespan = s.C.Now().Sub(start)
	return nil
}

// agentInterval is the single checkpoint-cadence seam, consulted by the
// classic loop each round and by the node-local agents each pump. The
// policy engine answers: the fixed interval, the legacy per-call
// adaptive Young recompute, or the youngdaly strategy's live cadence
// recomputed on observation events (§1's self-adjusting behaviour). A
// shrinking MTBF estimate therefore shortens the very next checkpoint
// gap in every mode.
func (s *Supervisor) agentInterval() simtime.Duration {
	return s.Policy.Interval()
}

// noteFailure feeds one observed failure into the policy engine (moving
// the MTBF estimate and, under youngdaly, the live cadence) and records
// the work lost to it: the simulated time since the job's durable state
// last moved forward. This is the quantity the interval policy exists
// to bound, and the chaos work-lost invariant reads it back.
func (s *Supervisor) noteFailure() {
	s.Policy.ObserveFailure()
	if s.Metrics != nil {
		lost := s.C.Now().Sub(s.lastProgressAt)
		if lost < 0 {
			lost = 0
		}
		s.Metrics.Hist("policy.work_lost").Observe(lost.Millis())
	}
}

// rebaseEvery returns the configured chain bound (default 8).
func (s *Supervisor) rebaseEvery() int {
	if s.RebaseEvery > 0 {
		return s.RebaseEvery
	}
	return 8
}

// restoreWorkers returns the replay pool width for restarts: the
// explicit RestoreWorkers, else the pipeline's capture width (a node
// provisioned to shard captures can shard replays), else sequential.
func (s *Supervisor) restoreWorkers() int {
	if s.RestoreWorkers > 0 {
		return s.RestoreWorkers
	}
	if s.Pipeline != nil {
		return s.Pipeline.captureWorkers()
	}
	return 1
}

// LastLeaf returns the object name of the newest acknowledged
// checkpoint — the recovery pointer — or "" before the first ack.
func (s *Supervisor) LastLeaf() string { return s.lastLeaf }

// LiveAgents returns how many armed, unstopped checkpoint agents the
// supervisor holds (stopped agents are compacted out by pumpAgents).
func (s *Supervisor) LiveAgents() int { return len(s.agents) }

// nodeMech remembers which kernel a cached mechanism was installed on: a
// reboot replaces the node's kernel, and a mechanism bound to the dead
// kernel fails every request from then on.
type nodeMech struct {
	k *kernel.Kernel
	m mechanism.Mechanism
}

func (s *Supervisor) mech(node int) (mechanism.Mechanism, error) {
	n := s.C.Node(node)
	if nm, ok := s.mechAt[node]; ok && nm.k == n.K {
		return nm.m, nil
	}
	m := s.MkMech()
	if err := m.Install(n.K); err != nil {
		return nil, err
	}
	if rp, ok := m.(mechanism.RestoreParallelizer); ok {
		rp.SetRestoreParallelism(s.restoreWorkers())
	}
	s.mechAt[node] = nodeMech{n.K, m}
	return m, nil
}

func (s *Supervisor) target(node int) storage.Target {
	if s.UseLocalDisk {
		return s.C.Node(node).Disk
	}
	return s.C.Node(node).Remote()
}

func (s *Supervisor) start(node int) error {
	s.node = node
	m, err := s.mech(node)
	if err != nil {
		return err
	}
	prepared := m.Prepare(s.Prog)
	n := s.C.Node(node)
	if _, err := n.K.Registry.Lookup(prepared.Name()); err != nil {
		n.K.Registry.MustRegister(prepared)
	}
	p, err := n.K.Spawn(prepared.Name())
	if err != nil {
		return err
	}
	if err := m.Setup(n.K, p); err != nil {
		return err
	}
	if s.Iterations > 0 {
		p.Regs().G[1] = s.Iterations
	}
	s.pid = p.PID
	s.lastProgressAt = s.C.Now()
	return nil
}

// commitTarget applies the UnsafeCommit contrast switch.
func (s *Supervisor) commitTarget(t storage.Target) storage.Target {
	if s.UnsafeCommit {
		return storage.Unsafe(t)
	}
	return t
}

// attempt runs one checkpoint against tgt and records the result.
func (s *Supervisor) attempt(p *proc.Process, tgt storage.Target, local bool) error {
	m, err := s.mech(s.node)
	if err != nil {
		return err
	}
	tk, err := mechanism.Checkpoint(m, s.C.Node(s.node).K, p, s.commitTarget(tgt), nil)
	if err != nil {
		return err
	}
	s.Checkpoints++
	s.lastLeaf = tk.Img.ObjectName()
	s.lastNode = s.node
	s.lastLocal = local
	s.Policy.ObserveCaptureCost(tk.Total())
	s.lastProgressAt = s.C.Now()
	s.emit(EvAck, s.node, 0, s.lastLeaf)
	return nil
}

// checkpoint takes the round's checkpoint with retry-with-backoff against
// the primary target, then (optionally) one fallback attempt against the
// node-local disk. Injected storage faults thus cost retries and degraded
// placement, not lost rounds.
func (s *Supervisor) checkpoint(p *proc.Process) error {
	retries := s.MaxRetries
	if retries == 0 {
		retries = 3
	}
	if retries < 0 {
		retries = 0
	}
	backoff := s.RetryBackoff
	if backoff <= 0 {
		backoff = simtime.Millisecond
	}
	local := s.UseLocalDisk
	var lastErr error
	for attempt := 0; ; attempt++ {
		lastErr = s.attempt(p, s.target(s.node), local)
		if lastErr == nil {
			return nil
		}
		if attempt >= retries {
			break
		}
		s.Counters.Inc("ckpt.retried", 1)
		// Back off in simulated time (doubling), then revalidate: the node
		// or the process may have died while we waited, in which case the
		// main loop — not this retry loop — must handle it.
		s.C.RunFor(backoff << uint(attempt))
		s.OracleReads += 2
		if !s.C.Node(s.node).Alive() {
			return lastErr
		}
		q, err := s.C.Node(s.node).K.Procs.Lookup(s.pid)
		if err != nil || q.State == proc.StateZombie {
			return lastErr
		}
		p = q
	}
	if s.LocalFallback && !local && s.C.Node(s.node).Alive() {
		if err := s.attempt(p, s.C.Node(s.node).Disk, true); err == nil {
			s.Counters.Inc("ckpt.fellback", 1)
			return nil
		}
	}
	s.Counters.Inc("ckpt.failed", 1)
	return lastErr
}

// recover restarts the job on a spare node from the best reachable
// checkpoint — or from scratch when the only copies died with the node.
func (s *Supervisor) recover() error {
	s.OracleReads++ // FindSpare scans ground-truth liveness
	spare := s.C.FindSpare(s.node)
	if spare < 0 {
		return errors.New("cluster: no spare node")
	}
	var src storage.Target
	if s.lastLocal {
		src = s.C.Node(s.lastNode).Disk // unreachable if that node is down
	} else {
		src = s.C.Node(spare).Remote()
	}
	chain, readWait := s.loadRecoveryChain(src, s.chainObjs)
	if chain == nil {
		// Nothing recoverable: start over (the paper's warning about
		// local-only storage).
		s.FromScratch++
		s.lastLeaf = ""
		s.lastFull = ""
		s.Restarts++
		return s.start(spare)
	}
	m, err := s.mech(spare)
	if err != nil {
		return err
	}
	// Make sure the (possibly wrapped) program exists on the spare.
	prepared := m.Prepare(s.Prog)
	if _, err := s.C.Node(spare).K.Registry.Lookup(prepared.Name()); err != nil {
		s.C.Node(spare).K.Registry.MustRegister(prepared)
	}
	p, err := m.Restart(s.C.Node(spare).K, chain, true)
	if err != nil {
		return err
	}
	s.observeRestore(chain, readWait)
	s.node = spare
	s.pid = p.PID
	s.Restarts++
	s.lastProgressAt = s.C.Now()
	return nil
}

// loadRecoveryChain fetches the newest restorable chain from src: the
// full ancestry of lastLeaf, or — when a mid-chain image is torn or
// lost — the chain of the last acked full image, the newest intact
// ancestor the supervisor still holds a name for. manifest is the
// caller's snapshot of the chain's acked object names (recoverFenced
// clears the live bookkeeping before loading, so it must snapshot
// first). Returns nil when nothing loads (scratch restart). readWait is
// the simulated storage wait recovery spent reading — accumulated
// across attempts, because a failed manifest read or broken walk is
// time the job actually waited before the load that finally worked.
func (s *Supervisor) loadRecoveryChain(src storage.Target, manifest []string) (chain []*checkpoint.Image, readWait simtime.Duration) {
	if s.lastLeaf == "" || src == nil || !src.Available() {
		return nil, 0
	}
	var fenceEpoch uint64
	if s.Fence != nil {
		fenceEpoch = s.Fence.Epoch()
	}
	env := &storage.Env{Bill: costmodel.Discard{},
		Wait: func(d simtime.Duration, _ string) { readWait += d }}
	// Fast path: when the supervisor still holds the manifest for the
	// chain ending at the recovery pointer, fetch it in one batched pass
	// instead of a seek-per-link parent walk. Any mismatch between the
	// manifest and what the store serves fails verification and drops to
	// the walk below, which re-discovers ancestry from the images alone.
	if n := len(manifest); n > 0 && manifest[n-1] == s.lastLeaf {
		m := append([]string(nil), manifest...)
		chain, err := checkpoint.LoadChainManifest(src, env, m)
		if err == nil {
			s.Counters.Inc("restore.manifest_reads", 1)
			return chain, readWait
		}
	}
	chain, err := checkpoint.LoadChain(src, env, s.lastLeaf)
	if err == nil {
		return chain, readWait
	}
	switch {
	case errors.Is(err, checkpoint.ErrCorrupt):
		// A torn or silently truncated image reached restore — the
		// exact failure atomic commit exists to prevent.
		s.Counters.Inc("ckpt.torn", 1)
	case errors.Is(err, storage.ErrNotFound):
		// A committed image vanished (a lost in-place overwrite, or a
		// chain whose ancestor was wrongly garbage-collected).
		s.Counters.Inc("ckpt.lost", 1)
	}
	// The manifest we tried may have been stale: a concurrent
	// server-side compaction folds the chain into one full image under
	// the leaf's own name and retires exactly the ancestors the attempts
	// above chased. Re-read the live manifest — trusted only while the
	// fence epoch is unchanged, since an epoch advance means another
	// failover owns these pointers now — and retry the batched path
	// before rewinding to lastFull, which would silently discard deltas
	// that are still perfectly restorable.
	if live := s.chainObjs; len(live) > 0 && live[len(live)-1] == s.lastLeaf &&
		!sameManifest(live, manifest) &&
		(s.Fence == nil || s.Fence.Epoch() == fenceEpoch) {
		m := append([]string(nil), live...)
		if chain, err2 := checkpoint.LoadChainManifest(src, env, m); err2 == nil {
			s.Counters.Inc("restore.manifest_refresh", 1)
			return chain, readWait
		}
	}
	if s.lastFull == "" || s.lastFull == s.lastLeaf {
		return nil, 0
	}
	// Torn-chain fallback: rewind the recovery pointer to the last full
	// image. The deltas after it are lost, the job is not.
	chain, err = checkpoint.LoadChain(src, env, s.lastFull)
	if err != nil {
		return nil, 0
	}
	s.Counters.Inc("ckpt.chain_fallback", 1)
	return chain, readWait
}

// sameManifest reports whether two chain manifests name the same
// objects in the same order.
func sameManifest(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// observeRestore records the modeled recovery latency of a successful
// restart: the measured storage wait of the chain read plus the replay
// cost at the supervisor's restore width. The replay cost is modeled
// (checkpoint.RestoreCost over the chain's post-pruning bytes) rather
// than measured off the node clock so the histogram stays comparable
// across nodes and the observation itself never perturbs the cluster's
// deterministic schedule.
func (s *Supervisor) observeRestore(chain []*checkpoint.Image, readWait simtime.Duration) {
	if s.Metrics == nil {
		return
	}
	workers := s.restoreWorkers()
	lat := readWait
	if n, err := checkpoint.ReplayBytes(chain); err == nil {
		lat += checkpoint.RestoreCost(n, workers)
	}
	s.Metrics.Hist("restore.latency").Observe(float64(lat.Millis()))
	s.Metrics.Hist("restore.chain_len").Observe(float64(len(chain)))
	s.Counters.Inc("restore.count", 1)
	s.Counters.Inc("restore.deltas_replayed", int64(len(chain)-1))
}

// runAutonomic is the detector-driven main loop: the supervisor sits on
// ControlNode and learns about the job only through two message-based
// channels — the failure detector's suspicion verdicts (heartbeats over
// the faulty network) and status RPCs (ProbeProcess) that can simply go
// unanswered. It never reads Alive() or a remote process table directly,
// so a partition looks exactly like a crash, false positives happen, and
// the fencing epoch is what keeps them safe.
func (s *Supervisor) runAutonomic(budget simtime.Duration) error {
	if s.Fence == nil {
		s.Fence = storage.NewFenceDomain("job", s.Counters)
	}
	s.mechAt = make(map[int]nodeMech)
	s.C.OnStep(s.pumpAgents)

	start := s.C.Now()
	first := 0
	if first == s.ControlNode {
		first = 1 // the job never shares a machine with the control plane
	}
	// Admit the first incarnation. Advancing before start is the
	// invariant: a writer's epoch is fixed before it can produce bytes.
	epoch := s.Fence.Advance()
	if err := s.start(first); err != nil {
		return err
	}
	s.armAgent(first, s.pid, epoch)
	s.emit(EvAdmit, first, epoch, "")

	// The control loop polls at a quarter of the policy's base cadence:
	// the live interval may shrink as estimates move, but the loop's own
	// rhythm stays anchored to the configured base.
	poll := s.Policy.Base() / 4
	if poll <= 0 {
		poll = simtime.Millisecond
	}
	deadline := start.Add(budget)
	lastObs := s.C.Now()
	for s.C.Now() < deadline {
		s.C.RunFor(poll)
		s.Policy.ObserveUptime(s.C.Now().Sub(lastObs))
		lastObs = s.C.Now()

		if s.Detector.Suspected(s.node) {
			// The detector says the job's node is dead. It may be wrong —
			// we cannot tell, and we do not try: fence, then fail over.
			s.noteFailure()
			s.Detector.Failover(s.node)
			if err := s.recoverFenced(); err != nil {
				return err
			}
			continue
		}
		st, ok := s.C.ProbeProcess(s.ControlNode, s.node, s.pid)
		if !ok {
			// No reply. Crashed or merely unreachable? The probe cannot
			// say; arbitration belongs to the detector, next round.
			continue
		}
		if !st.Found {
			// The node answered and the job is gone — it rebooted under
			// us faster than suspicion could accrue.
			s.noteFailure()
			if err := s.recoverFenced(); err != nil {
				return err
			}
			continue
		}
		if st.State == proc.StateZombie && st.ExitCode != 0 {
			s.noteFailure()
			if err := s.recoverFenced(); err != nil {
				return err
			}
			continue
		}
		if st.State == proc.StateZombie {
			s.Completed = true
			s.Fingerprint = st.Fingerprint
			s.Makespan = s.C.Now().Sub(start)
			// A lazy restore may still be draining: settle it so the final
			// latency accounting lands and the run leaves no dangling
			// demand-fill hook behind.
			s.settleLazy()
			// The final checkpoints may have acked between repair sweeps:
			// flush redundancy so the chain the run leaves behind is fully
			// replicated, not merely quorum-replicated.
			s.flushRepair()
			s.emit(EvComplete, s.node, s.Fence.Epoch(), fmt.Sprintf("%#x", s.Fingerprint))
			return nil
		}
	}
	s.Makespan = s.C.Now().Sub(start)
	return nil
}

// recoverFenced is the autonomic failover: advance the fencing epoch
// FIRST (from this instant no writer of the old incarnation can commit),
// then restart from the newest fenced checkpoint on a node the detector
// considers healthy. Note what is absent: any check that the old node is
// actually dead. If it is not, its agent will be told so by the storage
// server (ErrFenced) and self-fence.
func (s *Supervisor) recoverFenced() error {
	epoch := s.Fence.Advance()
	s.emit(EvFailover, s.node, epoch, "")
	if s.lazy != nil {
		// A still-draining lazy restore belongs to the incarnation we
		// just fenced off: poison it so the stale process faults instead
		// of materializing more state.
		s.failLazy(nil)
	}
	// Snapshot the chain manifest before the bookkeeping below clears
	// it: the manifest is what makes the batched-read fast path (and the
	// lazy restore's ancestor list) possible, and it describes exactly
	// the chain this failover restores from. Clearing first made the
	// fast path dead on every autonomic failover — recovery always paid
	// the seek-per-link parent walk.
	manifest := append([]string(nil), s.chainObjs...)
	// The superseded incarnation's chain is still the recovery pointer's
	// ancestry: it must survive on the server until the next
	// incarnation's first full ack supersedes it. Queue it for retire —
	// deletion happens only after that ack, never here.
	s.pendingRetire = append(s.pendingRetire, s.chainObjs...)
	s.chainObjs = nil
	s.chainSizes = nil
	spare := s.pickRestoreNode(s.node)
	if spare < 0 {
		return errors.New("cluster: no unsuspected spare node")
	}
	// recoveryTarget reads through the placement the acked chain was
	// written under; the new incarnation's first capture re-anchors
	// placement at the spare afterwards.
	src := s.recoveryTarget(spare)
	if s.LazyRestore {
		p, ok, err := s.recoverLazy(src, spare, epoch, manifest)
		if err != nil {
			return err
		}
		if ok {
			s.Restarts++
			s.node = spare
			s.pid = p.PID
			s.lastProgressAt = s.C.Now()
			s.armAgent(spare, s.pid, epoch)
			s.emit(EvAdmit, spare, epoch, "")
			return nil
		}
		// Preconditions not met (no manifest, incapable mechanism,
		// unreadable leaf): fall through to the eager path below.
	}
	chain, readWait := s.loadRecoveryChain(src, manifest)
	s.Restarts++
	if chain == nil {
		s.FromScratch++
		s.lastLeaf = ""
		s.lastFull = ""
		s.emit(EvScratch, spare, epoch, "")
		if err := s.start(spare); err != nil {
			return err
		}
		s.armAgent(spare, s.pid, epoch)
		s.emit(EvAdmit, spare, epoch, "")
		return nil
	}
	m, err := s.mech(spare)
	if err != nil {
		return err
	}
	prepared := m.Prepare(s.Prog)
	if _, err := s.C.Node(spare).K.Registry.Lookup(prepared.Name()); err != nil {
		s.C.Node(spare).K.Registry.MustRegister(prepared)
	}
	s.emit(EvRestore, spare, epoch, chain[len(chain)-1].ObjectName())
	p, err := m.Restart(s.C.Node(spare).K, chain, true)
	if err != nil {
		return err
	}
	s.observeRestore(chain, readWait)
	s.node = spare
	s.pid = p.PID
	s.lastProgressAt = s.C.Now()
	s.armAgent(spare, s.pid, epoch)
	s.emit(EvAdmit, spare, epoch, "")
	return nil
}
