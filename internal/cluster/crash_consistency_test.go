package cluster

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/costmodel"
	"repro/internal/mechanism"
	"repro/internal/policy"
	"repro/internal/simos/kernel"
	"repro/internal/simos/proc"
	"repro/internal/simtime"
	"repro/internal/storage"
	"repro/internal/syslevel"
	"repro/internal/workload"
)

// failRestartMech fails Restart on one specific kernel — the destination
// of a migration — and behaves normally everywhere else.
type failRestartMech struct {
	mechanism.Mechanism
	failOn *kernel.Kernel
}

func (m *failRestartMech) Restart(k *kernel.Kernel, chain []*checkpoint.Image, enqueue bool) (*proc.Process, error) {
	if k == m.failOn {
		return nil, errors.New("injected destination restart failure")
	}
	return m.Mechanism.Restart(k, chain, enqueue)
}

// TestMigrateFailedRestartKeepsSourceRunning is the regression test for
// the kill-before-restart ordering bug: when the destination restart
// fails, the source process must still be running (and able to finish),
// not already exited and removed.
func TestMigrateFailedRestartKeepsSourceRunning(t *testing.T) {
	prog := workload.Sparse{MiB: 2, WriteFrac: 0.2, Seed: 12, Iterations: 500}
	cRef := newCluster(t, 1, prog)
	pr, _ := cRef.Node(0).K.Spawn(prog.Name())
	cRef.RunUntil(func() bool { return pr.State == proc.StateZombie }, simtime.Minute)
	want := workload.Fingerprint(pr)

	c := newCluster(t, 2, prog)
	p, _ := c.Node(0).K.Spawn(prog.Name())
	c.RunUntil(func() bool { return p.Regs().PC >= 10 }, simtime.Minute)

	pool := NewMechPool(c, func() mechanism.Mechanism {
		return &failRestartMech{Mechanism: syslevel.NewCRAK(), failOn: c.Node(1).K}
	})
	if _, err := Migrate(c, pool, 0, 1, p.PID); err == nil {
		t.Fatal("migration to a failing destination reported success")
	}
	got, err := c.Node(0).K.Procs.Lookup(p.PID)
	if err != nil {
		t.Fatalf("source process gone after failed migration: %v", err)
	}
	if got.State == proc.StateZombie || got.State == proc.StateDead {
		t.Fatalf("source process dead after failed migration: state %v", got.State)
	}
	// Nothing leaked onto the destination.
	for _, q := range c.Node(1).K.Procs.All() {
		if q.Exe == p.Exe {
			t.Fatal("orphaned copy on destination after failed restart")
		}
	}
	// The survivor runs to the correct answer.
	if !c.RunUntil(func() bool { return p.State == proc.StateZombie }, simtime.Minute) {
		t.Fatal("source process stuck after failed migration")
	}
	if fp := workload.Fingerprint(p); fp != want {
		t.Fatalf("fingerprint %#x want %#x", fp, want)
	}
}

// failRequestMech fails checkpoint requests on one kernel while armed.
type failRequestMech struct {
	mechanism.Mechanism
	failOn *kernel.Kernel
	armed  *bool
}

func (m *failRequestMech) Request(k *kernel.Kernel, p *proc.Process, tgt storage.Target, env *storage.Env) (*mechanism.Ticket, error) {
	if *m.armed && k == m.failOn {
		return nil, errors.New("injected checkpoint failure")
	}
	return m.Mechanism.Request(k, p, tgt, env)
}

// TestGangPreemptPartialFailureLeavesGangRunning is the regression test
// for the interleaved capture-and-kill loop: a checkpoint failure on the
// last member used to leave the earlier members already dead with the
// gang not frozen. Preempt must be all-or-nothing.
func TestGangPreemptPartialFailureLeavesGangRunning(t *testing.T) {
	prog := workload.Sparse{MiB: 1, WriteFrac: 0.3, Seed: 2, Iterations: 30}
	c := newCluster(t, 3, prog)
	var members []GangMember
	for i := 0; i < 3; i++ {
		p, err := c.Node(i).K.Spawn(prog.Name())
		if err != nil {
			t.Fatal(err)
		}
		members = append(members, GangMember{Node: i, PID: p.PID})
	}
	c.RunUntil(func() bool {
		p, err := c.Node(0).K.Procs.Lookup(members[0].PID)
		return err == nil && p.Regs().PC >= 5
	}, simtime.Minute)

	armed := true
	g := NewGang(c, func() mechanism.Mechanism {
		return &failRequestMech{Mechanism: syslevel.NewCRAK(), failOn: c.Node(2).K, armed: &armed}
	}, members)

	if err := g.Preempt(); err == nil {
		t.Fatal("preempt with a failing member reported success")
	}
	// All-or-nothing: every member is still running.
	for i, mb := range members {
		p, err := c.Node(mb.Node).K.Procs.Lookup(mb.PID)
		if err != nil {
			t.Fatalf("member %d killed by failed preempt: %v", i, err)
		}
		if p.State == proc.StateZombie || p.State == proc.StateDead {
			t.Fatalf("member %d dead after failed preempt", i)
		}
	}
	// The gang is not half-frozen: Resume refuses.
	if _, err := g.Resume(); err == nil {
		t.Fatal("resume after failed preempt reported success")
	}

	// Clear the fault: the same gang preempts and resumes cleanly.
	armed = false
	if err := g.Preempt(); err != nil {
		t.Fatal(err)
	}
	for _, mb := range members {
		if _, err := c.Node(mb.Node).K.Procs.Lookup(mb.PID); err == nil {
			t.Fatal("member still running after successful preempt")
		}
	}
	procs, err := g.Resume()
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range procs {
		p := p
		if !c.RunUntil(func() bool { return p.State == proc.StateZombie }, simtime.Minute) {
			t.Fatalf("resumed member %d stuck", i)
		}
		if p.ExitCode != 0 {
			t.Fatalf("member %d exit %d", i, p.ExitCode)
		}
	}
}

// TestSupervisorRetriesAndFallsBackToLocalDisk pins the retry/backoff and
// local-fallback behaviour: with the checkpoint server crashing every
// write and the node disks healthy, every round must exhaust its remote
// retries and land the image locally.
func TestSupervisorRetriesAndFallsBackToLocalDisk(t *testing.T) {
	prog := workload.Sparse{MiB: 1, WriteFrac: 0.2, Seed: 31}
	c := newCluster(t, 2, prog)
	c.Server.SetFaults(&storage.FaultPolicy{WriteFault: 1, Rng: rand.New(rand.NewSource(5))})

	sup := MustNewSupervisor(SupervisorConfig{
		C:             c,
		MkMech:        func() mechanism.Mechanism { return syslevel.NewCRAK() },
		Prog:          prog,
		Iterations:    60,
		Policy:        policy.Fixed(5 * simtime.Millisecond),
		LocalFallback: true,
	})
	if err := sup.Run(2 * simtime.Second); err != nil {
		t.Fatal(err)
	}
	if !sup.Completed {
		t.Fatal("job did not complete")
	}
	if sup.Checkpoints == 0 {
		t.Fatal("no checkpoints landed despite local fallback")
	}
	if got := sup.Counters.Get("ckpt.retried"); got == 0 {
		t.Fatalf("ckpt.retried = %d, want > 0", got)
	}
	if got := sup.Counters.Get("ckpt.fellback"); got == 0 {
		t.Fatalf("ckpt.fellback = %d, want > 0", got)
	}
	// Every image actually lives on a node disk, none on the server.
	onDisk := 0
	for _, n := range c.Nodes() {
		intact, torn, _ := checkpoint.Audit(n.Disk)
		onDisk += intact
		if torn != 0 {
			t.Fatalf("torn image on %s", n.Name)
		}
	}
	if onDisk != sup.Checkpoints {
		t.Fatalf("disk images %d != checkpoints %d", onDisk, sup.Checkpoints)
	}
}

// TestSupervisorWithoutFallbackReportsFailedRounds pins the conservative
// path: no fallback means failed rounds are counted and the job still
// completes (checkpointing is protection, not a prerequisite).
func TestSupervisorWithoutFallbackReportsFailedRounds(t *testing.T) {
	prog := workload.Sparse{MiB: 1, WriteFrac: 0.2, Seed: 31}
	c := newCluster(t, 2, prog)
	c.Server.SetFaults(&storage.FaultPolicy{WriteFault: 1, Rng: rand.New(rand.NewSource(5))})

	sup := MustNewSupervisor(SupervisorConfig{
		C:          c,
		MkMech:     func() mechanism.Mechanism { return syslevel.NewCRAK() },
		Prog:       prog,
		Iterations: 60,
		Policy:     policy.Fixed(5 * simtime.Millisecond),
	})
	if err := sup.Run(2 * simtime.Second); err != nil {
		t.Fatal(err)
	}
	if !sup.Completed {
		t.Fatal("job did not complete")
	}
	if sup.Checkpoints != 0 {
		t.Fatalf("checkpoints %d, want 0 (server unusable, no fallback)", sup.Checkpoints)
	}
	if got := sup.Counters.Get("ckpt.failed"); got == 0 {
		t.Fatalf("ckpt.failed = %d, want > 0", got)
	}
}

// acceptanceRun drives the ISSUE's acceptance scenario: a Supervisor job
// over 10% per-write storage faults, node failures included.
func acceptanceRun(t *testing.T, unsafeCommit bool) (*Supervisor, *Cluster) {
	t.Helper()
	prog := workload.Sparse{MiB: 1, WriteFrac: 0.2, Seed: 11}
	c := newClusterSeed(t, 3, 11, prog)
	c.EnableStorageFaults(StorageFaultConfig{
		WriteFault:   0.1,
		OutageFrac:   0.25,
		SilentTear:   0.1,
		PublishFault: 0.02,
		ServerRepair: 20 * simtime.Millisecond,
	})
	c.SetInjector(NewInjector(Exponential{Mean: 40 * simtime.Millisecond}, 3*simtime.Millisecond, 21, 3))
	sup := MustNewSupervisor(SupervisorConfig{
		C:             c,
		MkMech:        func() mechanism.Mechanism { return syslevel.NewCRAK() },
		Prog:          prog,
		Iterations:    600,
		Policy:        policy.Fixed(5 * simtime.Millisecond),
		LocalFallback: true,
		UnsafeCommit:  unsafeCommit,
	})
	if err := sup.Run(10 * simtime.Second); err != nil {
		t.Fatal(err)
	}
	return sup, c
}

func newClusterSeed(t *testing.T, nodes int, seed int64, progs ...kernel.Program) *Cluster {
	t.Helper()
	reg := kernel.NewRegistry()
	for _, p := range progs {
		reg.MustRegister(p)
	}
	return New(Config{Nodes: nodes, Seed: seed, KernelCfg: kernel.DefaultConfig("")},
		costmodel.Default2005(), reg)
}

// TestSupervisorCrashConsistencyUnderStorageFaults is the acceptance
// criterion end to end: at a 10% per-write fault rate, a run with atomic
// commit completes with the right answer and zero torn images anywhere,
// while the same seed with atomic commit disabled produces at least one
// torn or lost image.
func TestSupervisorCrashConsistencyUnderStorageFaults(t *testing.T) {
	prog := workload.Sparse{MiB: 1, WriteFrac: 0.2, Seed: 11}
	cRef := newCluster(t, 1, prog)
	pr, _ := cRef.Node(0).K.Spawn(prog.Name())
	workload.SetIterations(pr, 600)
	cRef.RunUntil(func() bool { return pr.State == proc.StateZombie }, simtime.Minute)
	want := workload.Fingerprint(pr)

	sup, c := acceptanceRun(t, false)
	if !sup.Completed {
		t.Fatalf("atomic run did not complete (ckpts=%d restarts=%d)", sup.Checkpoints, sup.Restarts)
	}
	if sup.Fingerprint != want {
		t.Fatalf("atomic run fingerprint %#x want %#x", sup.Fingerprint, want)
	}
	if torn, lost := sup.Counters.Get("ckpt.torn"), sup.Counters.Get("ckpt.lost"); torn != 0 || lost != 0 {
		t.Fatalf("atomic run observed torn=%d lost=%d images at restore", torn, lost)
	}
	if sup.Counters.Get("ckpt.retried") == 0 {
		t.Fatal("atomic run reported no retries at a 10% fault rate")
	}
	// Sweep all storage: no committed image anywhere fails to decode.
	c.Server.Recover()
	if _, torn, _ := checkpoint.Audit(c.Node(0).Remote()); torn != 0 {
		t.Fatalf("atomic run left %d torn images on the server", torn)
	}
	for _, n := range c.Nodes() {
		if !n.Alive() {
			continue
		}
		if _, torn, _ := checkpoint.Audit(n.Disk); torn != 0 {
			t.Fatalf("atomic run left %d torn images on %s", torn, n.Name)
		}
	}

	unsafeSup, uc := acceptanceRun(t, true)
	uc.Server.Recover()
	damage := unsafeSup.Counters.Get("ckpt.torn") + unsafeSup.Counters.Get("ckpt.lost")
	if _, torn, _ := checkpoint.Audit(uc.Node(0).Remote()); torn > 0 {
		damage += int64(torn)
	}
	for _, n := range uc.Nodes() {
		if n.Alive() {
			if _, torn, _ := checkpoint.Audit(n.Disk); torn > 0 {
				damage += int64(torn)
			}
		}
	}
	if damage == 0 {
		t.Fatal("unsafe commit produced no torn or lost images — the contrast is gone")
	}
}
