package cluster

import (
	"strings"
	"testing"

	"repro/internal/simtime"
)

func fleetCfg(nodes, shards, jobs int, seed int64) FleetConfig {
	return FleetConfig{
		Nodes:     nodes,
		Shards:    shards,
		Jobs:      jobs,
		Seed:      seed,
		CkptEvery: 2,
	}
}

// The timer-amortization regression test: the digest architecture arms
// exactly one recurring timer per shard, independent of node count. The
// naive per-node heartbeat design would arm Nodes timers — 10k timers at
// 10k nodes — and this test pins that it cannot come back.
func TestFleetTimerBudgetIsPerShard(t *testing.T) {
	for _, tc := range []struct{ nodes, shards int }{
		{100, 4},
		{1000, 8},
		{10000, 64},
	} {
		r := MustNewRootSupervisor(fleetCfg(tc.nodes, tc.shards, tc.nodes/100+1, 7))
		if got := r.Fleet().Timers(); got != tc.shards {
			t.Fatalf("%d nodes / %d shards armed %d timers, want exactly %d (one per shard)",
				tc.nodes, tc.shards, got, tc.shards)
		}
		// Running must not arm any further recurring timers.
		r.Run(20 * simtime.Millisecond)
		if got := r.Fleet().Timers(); got != tc.shards {
			t.Fatalf("after run: %d timers, want %d", got, tc.shards)
		}
	}
}

// Same seed, same config → byte-identical event log and counters, even
// though shard loops run on real parallel goroutines.
func TestFleetDeterministicAcrossRuns(t *testing.T) {
	run := func() (string, string) {
		cfg := fleetCfg(64, 8, 16, 42)
		cfg.HBLoss = 0.02
		cfg.DigestLoss = 0.05
		cfg.DigestDup = 0.05
		cfg.DigestJitter = 2 * simtime.Millisecond
		r := MustNewRootSupervisor(cfg)
		if err := r.FailAt(10*simtime.Millisecond, 3, true, 0); err != nil {
			t.Fatal(err)
		}
		if err := r.FailAt(25*simtime.Millisecond, 40, false, 30*simtime.Millisecond); err != nil {
			t.Fatal(err)
		}
		r.Run(200 * simtime.Millisecond)
		return FormatEvents(r.Events), r.Counters().String()
	}
	ev1, ctr1 := run()
	ev2, ctr2 := run()
	if ev1 != ev2 {
		t.Fatalf("event logs diverge across identical runs:\n--- run1 ---\n%s\n--- run2 ---\n%s", ev1, ev2)
	}
	if ctr1 != ctr2 {
		t.Fatalf("counters diverge across identical runs:\n--- run1 ---\n%s\n--- run2 ---\n%s", ctr1, ctr2)
	}
}

// A permanent node failure is detected via the digest path, the job
// fails over inside the shard, and checkpointing resumes on the new
// placement.
func TestFleetDetectsAndFailsOver(t *testing.T) {
	cfg := fleetCfg(8, 2, 4, 1)
	r := MustNewRootSupervisor(cfg)
	if err := r.FailAt(10*simtime.Millisecond, 0, true, 0); err != nil {
		t.Fatal(err)
	}
	st := r.Run(100 * simtime.Millisecond)
	if st.Detections != 1 {
		t.Fatalf("detections = %d, want 1\n%s", st.Detections, r.Counters())
	}
	if st.Failovers < 1 {
		t.Fatalf("failovers = %d, want >= 1", st.Failovers)
	}
	// Timeout bound is 4 ticks (4ms default) plus delivery delay; the
	// detection latency must sit near it, not at some timer-sweep
	// multiple.
	if st.DetectP99 <= 0 || st.DetectP99 > 10 {
		t.Fatalf("detect p99 = %.2f ms, want within (0, 10]", st.DetectP99)
	}
	if st.Checkpoints == 0 {
		t.Fatal("no checkpoints acked")
	}
	if st.DoubleCommits != 0 {
		t.Fatalf("double commits = %d with fencing on", st.DoubleCommits)
	}
	log := FormatEvents(r.Events)
	for _, want := range []string{"failover", "admit"} {
		if !strings.Contains(log, want) {
			t.Fatalf("event log missing %q:\n%s", want, log)
		}
	}
}

// Event flushes from shards to the root are bounded by EventBatch.
func TestFleetEventBatchesBounded(t *testing.T) {
	cfg := fleetCfg(32, 4, 32, 3)
	cfg.EventBatch = 4
	r := MustNewRootSupervisor(cfg)
	var fromCallback int
	r.OnBatch = func(b []Event) {
		if len(b) > 4 {
			t.Fatalf("OnBatch saw %d events, bound is 4", len(b))
		}
		fromCallback += len(b)
	}
	st := r.Run(50 * simtime.Millisecond)
	if st.MaxBatch > 4 {
		t.Fatalf("max batch %d exceeds bound 4", st.MaxBatch)
	}
	if st.Events == 0 || fromCallback != st.Events {
		t.Fatalf("flushed %d events but callback saw %d", st.Events, fromCallback)
	}
	if st.Batches < st.Events/4 {
		t.Fatalf("%d events in %d batches with bound 4: impossible", st.Events, st.Batches)
	}
}

// When every member of a shard is suspected, its jobs migrate to another
// shard: the newest checkpoint is carried across, the source chain is
// retired, and the job keeps checkpointing in the target's namespace.
func TestFleetCrossShardMigration(t *testing.T) {
	cfg := fleetCfg(4, 2, 2, 5)
	r := MustNewRootSupervisor(cfg)
	// Shard 0 owns nodes 0 and 1; kill both so job 0 has nowhere local.
	if err := r.FailAt(20*simtime.Millisecond, 0, true, 0); err != nil {
		t.Fatal(err)
	}
	if err := r.FailAt(20*simtime.Millisecond, 1, true, 0); err != nil {
		t.Fatal(err)
	}
	st := r.Run(100 * simtime.Millisecond)
	if st.Migrations < 1 {
		t.Fatalf("migrations = %d, want >= 1\n%s", st.Migrations, FormatEvents(r.Events))
	}
	// The migrated job must have restored from a checkpoint copied into
	// shard 1's namespace, readable through the root's audit path.
	var restored string
	for _, e := range r.Events {
		if e.Kind == EvRestore && strings.HasPrefix(e.Object, "s001/") {
			restored = e.Object
		}
	}
	if restored == "" {
		t.Fatalf("no restore in target shard namespace:\n%s", FormatEvents(r.Events))
	}
	// The carried checkpoint lives in the target's store until the
	// target's own GC retires it behind newer checkpoints.
	if _, err := r.ReadObject(restored); err != nil {
		var retired bool
		for _, e := range r.Events {
			if e.Kind == EvRetire && e.Object == restored {
				retired = true
			}
		}
		if !retired {
			t.Fatalf("migrated checkpoint unreadable and never retired: %v", err)
		}
	}
	// Source-side chain objects must have been retired by the root.
	var retiredSrc bool
	for _, e := range r.Events {
		if e.Kind == EvRetire && strings.HasPrefix(e.Object, "s000/") {
			retiredSrc = true
		}
	}
	if !retiredSrc {
		t.Fatalf("source chain never retired:\n%s", FormatEvents(r.Events))
	}
}

// A transiently failed node is detected, failed over, and on reboot its
// heartbeats clear the suspicion again.
func TestFleetTransientFailureRecovers(t *testing.T) {
	cfg := fleetCfg(8, 2, 4, 11)
	r := MustNewRootSupervisor(cfg)
	if err := r.FailAt(10*simtime.Millisecond, 2, false, 20*simtime.Millisecond); err != nil {
		t.Fatal(err)
	}
	st := r.Run(100 * simtime.Millisecond)
	if st.Detections != 1 {
		t.Fatalf("detections = %d, want 1", st.Detections)
	}
	c := r.Counters()
	if c.Get("fleet.reboots") != 1 {
		t.Fatalf("reboots = %d, want 1", c.Get("fleet.reboots"))
	}
	if c.Get("det.recoveries") < 1 {
		t.Fatalf("suspicion never cleared after reboot\n%s", c)
	}
}

// False suspicions create ghost writers: superseded incarnations that
// keep publishing. With fencing on they must self-fence (zero double
// commits); with the NoFencing knob the same run must produce the
// split-brain double commit the invariant suite exists to catch.
func TestFleetGhostWritersFenceOrDoubleCommit(t *testing.T) {
	base := fleetCfg(8, 2, 8, 9)
	base.DigestLoss = 0.45 // lossy enough to force false suspicions
	base.DetectAfter = 2 * simtime.Millisecond

	fenced := MustNewRootSupervisor(base)
	st := fenced.Run(300 * simtime.Millisecond)
	if st.FalsePositives == 0 {
		t.Skipf("seed produced no false positives; counters:\n%s", fenced.Counters())
	}
	if st.SelfFences == 0 {
		t.Fatalf("false positives (%d) but no ghost self-fenced\n%s", st.FalsePositives, fenced.Counters())
	}
	if st.DoubleCommits != 0 {
		t.Fatalf("double commits = %d with fencing on", st.DoubleCommits)
	}

	broken := base
	broken.NoFencing = true
	bst := MustNewRootSupervisor(broken).Run(300 * simtime.Millisecond)
	if bst.DoubleCommits == 0 {
		t.Fatal("NoFencing run produced no double commits — the broken build went undetected")
	}
}

// Uneven shard division can leave a tail shard with zero members; the
// fleet must run it without panicking and with no digest traffic from it.
func TestFleetEmptyTailShard(t *testing.T) {
	r := MustNewRootSupervisor(fleetCfg(4, 3, 2, 13))
	if n := r.shards[2].n; n != 0 {
		t.Fatalf("expected empty tail shard, got %d members", n)
	}
	st := r.Run(50 * simtime.Millisecond)
	if st.Checkpoints == 0 {
		t.Fatal("no checkpoints acked")
	}
	if got := r.SC.Shard(2).Get("det.digests"); got != 0 {
		t.Fatalf("empty shard ingested %d digests", got)
	}
}

func TestFleetConfigValidation(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  FleetConfig
	}{
		{"one node", FleetConfig{Nodes: 1, Shards: 1}},
		{"zero shards", FleetConfig{Nodes: 4, Shards: 0}},
		{"shards exceed nodes", FleetConfig{Nodes: 4, Shards: 5}},
		{"jobs exceed nodes", FleetConfig{Nodes: 4, Shards: 2, Jobs: 5}},
		{"bad probability", FleetConfig{Nodes: 4, Shards: 2, HBLoss: 1.5}},
	} {
		if _, err := NewRootSupervisor(tc.cfg); err == nil {
			t.Errorf("%s: config accepted, want error", tc.name)
		}
	}
	if err := MustNewRootSupervisor(fleetCfg(4, 2, 2, 1)).FailAt(0, 99, true, 0); err == nil {
		t.Error("FailAt accepted out-of-range node")
	}
}
