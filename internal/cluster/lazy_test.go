package cluster

import (
	"strings"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/costmodel"
	"repro/internal/detector"
	"repro/internal/mechanism"
	"repro/internal/policy"
	"repro/internal/simtime"
	"repro/internal/storage"
	"repro/internal/syslevel"
	"repro/internal/trace"
	"repro/internal/workload"
)

// lazySupervisor builds the standard 4-node autonomic topology with the
// restart-before-read failover path enabled.
func lazySupervisor(t *testing.T, c *Cluster, prog workload.Sparse, iters uint64, workers int) *Supervisor {
	t.Helper()
	mon := detector.NewMonitor(c, detector.NewTimeout(2*simtime.Millisecond),
		detector.Config{Period: 200 * simtime.Microsecond, Observer: 3}, c.Counters)
	return MustNewSupervisor(SupervisorConfig{
		C:              c,
		MkMech:         func() mechanism.Mechanism { return syslevel.NewCRAK() },
		Prog:           prog,
		Iterations:     iters,
		Policy:         policy.Fixed(simtime.Millisecond),
		Detector:       mon,
		ControlNode:    3,
		Incremental:    true,
		RebaseEvery:    8,
		RestoreWorkers: workers,
		LazyRestore:    true,
	})
}

// The lazy-failover tentpole end to end: with LazyRestore on, a mid-run
// node failure must restart the job from the leaf image alone, drain the
// rest in the background, and still finish with the exact reference
// fingerprint. The telemetry contract rides along: the restore is marked
// lazy in the event log, time-to-first-instruction is recorded per
// restore, and restore.latency is observed exactly once per restart (the
// double-count satellite).
func TestLazyFailoverEndToEnd(t *testing.T) {
	prog := workload.Sparse{MiB: 1, WriteFrac: 0.2, Seed: 51}
	want := referenceFingerprint(t, prog, 60)

	c := newCluster(t, 4, prog)
	sup := lazySupervisor(t, c, prog, 60, 4)

	jobNode := 0
	acks := 0
	sup.OnEvent = func(ev Event) {
		switch ev.Kind {
		case EvAdmit:
			jobNode = ev.Node
		case EvAck:
			acks++
		}
	}
	failed := false
	c.OnStep(func() {
		if !failed && acks >= 3 {
			failed = true
			c.Fail(jobNode)
		}
	})

	if err := sup.Run(2 * simtime.Second); err != nil {
		t.Fatal(err)
	}
	if !failed {
		t.Fatal("scenario never failed a node")
	}
	if !sup.Completed {
		t.Fatalf("job did not complete (ckpts=%d restarts=%d counters:\n%s)",
			sup.Checkpoints, sup.Restarts, c.Counters)
	}
	if sup.Fingerprint != want {
		t.Fatalf("fingerprint %#x want %#x: lazy failover lost state", sup.Fingerprint, want)
	}

	lazyRestores := c.Counters.Get("restore.lazy")
	if lazyRestores == 0 {
		t.Fatalf("restore.lazy = 0: failover never took the lazy path (counters:\n%s)", c.Counters)
	}
	if n := c.Counters.Get("restore.lazy_aborted"); n != 0 {
		t.Fatalf("restore.lazy_aborted = %d on a single clean failover", n)
	}
	var lazyEvents int64
	for _, ev := range sup.Events {
		if ev.Kind == EvRestore && strings.HasSuffix(ev.Object, " lazy") {
			lazyEvents++
		}
	}
	if lazyEvents != lazyRestores {
		t.Fatalf("%d lazy EvRestore events, restore.lazy = %d", lazyEvents, lazyRestores)
	}

	// Single-observation contract: one restore.latency sample per
	// restart, whichever path served it, and one TTFI sample per lazy
	// restore — with TTFI at most the full-restore latency.
	lat := sup.Metrics.Hist("restore.latency").Snapshot()
	if lat.N != sup.Restarts {
		t.Fatalf("restore.latency has %d observations, want %d (one per restart)", lat.N, sup.Restarts)
	}
	ttfi := sup.Metrics.Hist("restore.first_instr_latency").Snapshot()
	if int64(ttfi.N) != lazyRestores {
		t.Fatalf("restore.first_instr_latency has %d observations, want %d", ttfi.N, lazyRestores)
	}
	if ttfi.P50 > lat.P50 {
		t.Fatalf("TTFI p50 %.3f ms exceeds full restore p50 %.3f ms", ttfi.P50, lat.P50)
	}
	if n := c.Counters.Get("restore.count"); int(n) != sup.Restarts {
		t.Fatalf("restore.count = %d, want %d", n, sup.Restarts)
	}
}

// Digest-equivalence table at the supervisor level: the same seed, fault
// schedule, and workload run to completion with eager and lazy failover
// at several restore widths must produce identical result fingerprints —
// laziness and width change when bytes move, never which bytes.
func TestLazyVsEagerFingerprintAcrossWorkers(t *testing.T) {
	prog := workload.Sparse{MiB: 1, WriteFrac: 0.2, Seed: 52}
	want := referenceFingerprint(t, prog, 60)

	for _, workers := range []int{1, 4} {
		for _, lazy := range []bool{false, true} {
			c := newClusterSeed(t, 4, 52, prog)
			mon := detector.NewMonitor(c, detector.NewTimeout(2*simtime.Millisecond),
				detector.Config{Period: 200 * simtime.Microsecond, Observer: 3}, c.Counters)
			sup := MustNewSupervisor(SupervisorConfig{
				C:              c,
				MkMech:         func() mechanism.Mechanism { return syslevel.NewCRAK() },
				Prog:           prog,
				Iterations:     60,
				Policy:         policy.Fixed(simtime.Millisecond),
				Detector:       mon,
				ControlNode:    3,
				Incremental:    true,
				RebaseEvery:    8,
				RestoreWorkers: workers,
				LazyRestore:    lazy,
			})
			jobNode := 0
			acks := 0
			sup.OnEvent = func(ev Event) {
				switch ev.Kind {
				case EvAdmit:
					jobNode = ev.Node
				case EvAck:
					acks++
				}
			}
			failed := false
			c.OnStep(func() {
				if !failed && acks >= 3 {
					failed = true
					c.Fail(jobNode)
				}
			})
			if err := sup.Run(2 * simtime.Second); err != nil {
				t.Fatalf("workers=%d lazy=%v: %v", workers, lazy, err)
			}
			if !sup.Completed {
				t.Fatalf("workers=%d lazy=%v: job did not complete (counters:\n%s)",
					workers, lazy, c.Counters)
			}
			if sup.Fingerprint != want {
				t.Fatalf("workers=%d lazy=%v: fingerprint %#x want %#x",
					workers, lazy, sup.Fingerprint, want)
			}
			if lazy && c.Counters.Get("restore.lazy") == 0 {
				t.Fatalf("workers=%d: lazy run never took the lazy path", workers)
			}
		}
	}
}

// Mid-restore node failure: the restored node dies while the lazy
// session is still draining. The superseded session must self-fence
// (abort, never serve state to the dead incarnation) and the next
// failover must still finish the job with the reference result.
func TestLazyMidRestoreNodeFailure(t *testing.T) {
	// Enough memory that the deferred plan takes many prefetch batches to
	// drain, and a detector fast enough to fail over inside that window.
	prog := workload.Sparse{MiB: 4, WriteFrac: 0.1, Seed: 53}
	want := referenceFingerprint(t, prog, 40)

	c := newCluster(t, 4, prog)
	mon := detector.NewMonitor(c, detector.NewTimeout(600*simtime.Microsecond),
		detector.Config{Period: 100 * simtime.Microsecond, Observer: 3}, c.Counters)
	sup := MustNewSupervisor(SupervisorConfig{
		C:              c,
		MkMech:         func() mechanism.Mechanism { return syslevel.NewCRAK() },
		Prog:           prog,
		Iterations:     40,
		Policy:         policy.Fixed(3 * simtime.Millisecond),
		Detector:       mon,
		ControlNode:    3,
		Incremental:    true,
		RebaseEvery:    8,
		RestoreWorkers: 4,
		LazyRestore:    true,
	})

	jobNode := 0
	acks := 0
	struck := false
	sup.OnEvent = func(ev Event) {
		switch ev.Kind {
		case EvAdmit:
			jobNode = ev.Node
		case EvAck:
			acks++
		case EvRestore:
			// Strike the restored node the instant the lazy restore is
			// announced: the session has drained nothing yet, so the next
			// failover supersedes it mid-restore.
			if strings.HasSuffix(ev.Object, " lazy") && !struck {
				struck = true
				c.Fail(ev.Node)
			}
		}
	}
	failed := false
	c.OnStep(func() {
		if !failed && acks >= 3 {
			failed = true
			c.Fail(jobNode)
		}
	})

	if err := sup.Run(2 * simtime.Second); err != nil {
		t.Fatal(err)
	}
	if !struck {
		t.Fatal("no lazy restore happened — scenario did not run")
	}
	if !sup.Completed {
		t.Fatalf("job did not complete after mid-restore failure (counters:\n%s)", c.Counters)
	}
	if sup.Fingerprint != want {
		t.Fatalf("fingerprint %#x want %#x: state corrupted across the aborted session",
			sup.Fingerprint, want)
	}
	if n := c.Counters.Get("restore.lazy_aborted"); n == 0 {
		t.Fatalf("restore.lazy_aborted = 0: the superseded session never self-fenced (counters:\n%s)",
			c.Counters)
	}
	// Every restart still records exactly one restore.latency sample —
	// aborted sessions record none (their restore never finished).
	lat := sup.Metrics.Hist("restore.latency").Snapshot()
	aborted := int(c.Counters.Get("restore.lazy_aborted"))
	if lat.N != sup.Restarts-aborted {
		t.Fatalf("restore.latency has %d observations, want %d (restarts %d - aborted %d)",
			lat.N, sup.Restarts-aborted, sup.Restarts, aborted)
	}
}

// foldMidWalk wraps a storage target and runs a callback after the n-th
// read — the deterministic stand-in for a server-side compaction landing
// between a restore's chain walk reading the leaf and chasing its
// parent.
type foldMidWalk struct {
	storage.Target
	after int
	reads int
	then  func()
}

func (f *foldMidWalk) ReadObject(o string, env *storage.Env) ([]byte, error) {
	data, err := f.Target.ReadObject(o, env)
	f.reads++
	if f.reads == f.after && f.then != nil {
		fn := f.then
		f.then = nil
		fn()
	}
	return data, err
}

// The stale-manifest regression (races restore against compaction): the
// recovery walk reads the old incremental leaf, a concurrent
// CompactChain folds the chain under the leaf's name and retires its
// ancestors, and the walk's parent chase hits ErrNotFound. Before the
// fix, loadRecoveryChain fell back to the (also retired) lastFull with
// its stale manifest snapshot and recovery went from scratch; it must
// instead re-read the live manifest under the unchanged fence epoch and
// restore from the fold.
func TestRecoveryRefreshesManifestAfterConcurrentCompaction(t *testing.T) {
	srv := storage.NewServer("srv", costmodel.Default2005())
	remote := storage.NewRemote("net", srv)

	// A 3-link chain: full F <- delta D <- leaf L.
	page := make([]byte, 4096)
	for i := range page {
		page[i] = 0x5A
	}
	threads := []checkpoint.ThreadRecord{{TID: 1}}
	full := &checkpoint.Image{Mode: checkpoint.ModeFull, PID: 1, Seq: 1, Exe: "x",
		Threads: threads,
		VMAs: []checkpoint.VMASection{{Start: 0x1000, Length: 0x1000,
			Extents: []checkpoint.Extent{{Addr: 0x1000, Data: page}}}}}
	delta := &checkpoint.Image{Mode: checkpoint.ModeIncremental, PID: 1, Seq: 2, Exe: "x",
		Parent: full.ObjectName(), Threads: threads,
		VMAs: []checkpoint.VMASection{{Start: 0x1000, Length: 0x1000,
			Extents: []checkpoint.Extent{{Addr: 0x1000, Data: page[:64]}}}}}
	leaf := &checkpoint.Image{Mode: checkpoint.ModeIncremental, PID: 1, Seq: 3, Exe: "x",
		Parent: delta.ObjectName(), Threads: threads,
		VMAs: []checkpoint.VMASection{{Start: 0x1000, Length: 0x1000,
			Extents: []checkpoint.Extent{{Addr: 0x1000, Data: page[:32]}}}}}
	objs := []string{full.ObjectName(), delta.ObjectName(), leaf.ObjectName()}
	for _, img := range []*checkpoint.Image{full, delta, leaf} {
		data, err := img.EncodeBytes()
		if err != nil {
			t.Fatal(err)
		}
		if err := storage.Write(remote, img.ObjectName(), data, storage.WriteOptions{Atomic: true}); err != nil {
			t.Fatal(err)
		}
	}

	s := &Supervisor{Counters: trace.NewCounters()}
	s.lastLeaf = leaf.ObjectName()
	s.lastFull = full.ObjectName()
	s.chainObjs = append([]string(nil), objs...)

	// The caller's manifest snapshot is stale: it predates the last ack,
	// so the batched fast path is skipped and recovery goes to the walk.
	stale := objs[:2]

	src := &foldMidWalk{Target: remote, after: 1}
	src.then = func() {
		st, err := storage.CompactChain(remote, objs, checkpoint.FoldEncodedChain, nil)
		if err != nil || st.Folded == "" {
			t.Fatalf("compaction failed: folded=%q err=%v", st.Folded, err)
		}
		if st.Folded != leaf.ObjectName() {
			t.Fatalf("fold published under %s, want the leaf's name %s", st.Folded, leaf.ObjectName())
		}
		s.chainObjs = []string{st.Folded}
		s.lastFull = st.Folded
	}

	chain, _ := s.loadRecoveryChain(src, stale)
	if chain == nil {
		t.Fatalf("recovery found nothing — stale manifest won over the live fold (counters:\n%s)",
			s.Counters)
	}
	if len(chain) != 1 || chain[0].Mode != checkpoint.ModeFull {
		t.Fatalf("recovered a %d-link chain (head %v), want the 1-link fold", len(chain), chain[0].Mode)
	}
	if n := s.Counters.Get("restore.manifest_refresh"); n != 1 {
		t.Fatalf("restore.manifest_refresh = %d, want 1 (counters:\n%s)", n, s.Counters)
	}
	if n := s.Counters.Get("ckpt.chain_fallback"); n != 0 {
		t.Fatalf("ckpt.chain_fallback = %d: recovery rewound to lastFull despite a loadable live chain", n)
	}
}

// LazyRestore is an autonomic-failover feature: configuring it without a
// detector must be rejected up front, not fall over at the first
// failover.
func TestLazyRestoreRequiresDetector(t *testing.T) {
	prog := workload.Sparse{MiB: 1, WriteFrac: 0.2, Seed: 54}
	c := newCluster(t, 4, prog)
	_, err := NewSupervisor(SupervisorConfig{
		C:           c,
		MkMech:      func() mechanism.Mechanism { return syslevel.NewCRAK() },
		Prog:        prog,
		Iterations:  10,
		Policy:      policy.Fixed(simtime.Millisecond),
		LazyRestore: true,
	})
	if err == nil {
		t.Fatal("NewSupervisor accepted LazyRestore without a Detector")
	}
}
