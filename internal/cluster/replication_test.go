// Replication policy tests: placement, degraded restore, background
// re-replication, and the config validation that keeps impossible
// geometries out of the supervisor. These run the full autonomic loop —
// detector suspicions, fenced failover — with the replica placement
// layered on top, and assert through counters and the storage targets
// themselves, never the simulator oracle.

package cluster

import (
	"strings"
	"testing"

	"repro/internal/detector"
	"repro/internal/mechanism"
	"repro/internal/policy"
	"repro/internal/simtime"
	"repro/internal/storage"
	"repro/internal/syslevel"
	"repro/internal/workload"
)

// replicatedSupervisor builds the standard 4-node autonomic fixture
// (worker nodes 0-2, control+observer on 3) with the given replication
// policy.
func replicatedSupervisor(t *testing.T, c *Cluster, prog workload.Sparse, iters uint64,
	rc *ReplicationConfig) *Supervisor {
	t.Helper()
	mon := detector.NewMonitor(c, detector.NewTimeout(2*simtime.Millisecond),
		detector.Config{Period: 200 * simtime.Microsecond, Observer: c.NumNodes() - 1}, c.Counters)
	return MustNewSupervisor(SupervisorConfig{
		C:           c,
		MkMech:      func() mechanism.Mechanism { return syslevel.NewCRAK() },
		Prog:        prog,
		Iterations:  iters,
		Policy:      policy.Fixed(3 * simtime.Millisecond),
		Detector:    mon,
		ControlNode: c.NumNodes() - 1,
		Replication: rc,
	})
}

// TestReplicationBuddyPlacementAndQuorum runs a healthy buddy-pair job
// to completion and verifies the write path actually fanned out: the
// recovery pointer is present on the owner's disk, the buddy's disk, AND
// the shared server, and every ack paid a quorum publish.
func TestReplicationBuddyPlacementAndQuorum(t *testing.T) {
	prog := workload.Sparse{MiB: 1, WriteFrac: 0.2, Seed: 41}
	want := referenceFingerprint(t, prog, 60)
	c := newCluster(t, 4, prog)
	sup := replicatedSupervisor(t, c, prog, 60, &ReplicationConfig{Mode: ReplBuddy})
	if err := sup.Run(2 * simtime.Second); err != nil {
		t.Fatal(err)
	}
	if !sup.Completed || sup.Fingerprint != want {
		t.Fatalf("completed=%v fingerprint=%#x want %#x", sup.Completed, sup.Fingerprint, want)
	}
	if n := c.Counters.Get("repl.publishes"); n == 0 {
		t.Fatal("no quorum publishes recorded")
	}
	if sup.ReplicationMode() != ReplBuddy {
		t.Fatalf("mode = %q", sup.ReplicationMode())
	}
	placement := sup.ReplicaPlacement()
	if len(placement) != 3 || placement[len(placement)-1] != -1 {
		t.Fatalf("buddy placement = %v, want [owner buddy -1]", placement)
	}
	leaf := sup.LastLeaf()
	if leaf == "" {
		t.Fatal("no recovery pointer after a completed run")
	}
	for _, slot := range placement {
		var tgt storage.Target
		if slot < 0 {
			tgt = c.Node(0).Remote()
		} else {
			tgt = c.Node(slot).Disk
		}
		if _, err := tgt.ReadObject(leaf, nil); err != nil {
			t.Fatalf("leaf %s missing on slot %d (%s): %v", leaf, slot, tgt.Name(), err)
		}
	}
	if sup.OracleReads != 0 {
		t.Fatalf("replicated supervisor read ground truth %d times", sup.OracleReads)
	}
}

// TestReplicationBuddyRestoreFromNearestReplica kills the job's node and
// checks the failover restored from a replica disk — the buddy scheme's
// read-side payoff — rather than from the server, and that the job still
// finishes with the right answer.
func TestReplicationBuddyRestoreFromNearestReplica(t *testing.T) {
	prog := workload.Sparse{MiB: 1, WriteFrac: 0.2, Seed: 42}
	want := referenceFingerprint(t, prog, 60)
	c := newCluster(t, 4, prog)
	sup := replicatedSupervisor(t, c, prog, 60, &ReplicationConfig{Mode: ReplBuddy})
	killed := false
	c.OnStep(func() {
		if !killed && c.Now() >= simtime.Time(8*simtime.Millisecond) {
			killed = true
			c.Fail(0) // the job starts on node 0
		}
	})
	if err := sup.Run(2 * simtime.Second); err != nil {
		t.Fatal(err)
	}
	if !sup.Completed || sup.Fingerprint != want {
		t.Fatalf("completed=%v fingerprint=%#x want %#x (restarts=%d scratch=%d)",
			sup.Completed, sup.Fingerprint, want, sup.Restarts, sup.FromScratch)
	}
	if sup.Restarts == 0 {
		t.Fatal("the node kill caused no failover")
	}
	if sup.FromScratch != 0 {
		t.Fatalf("%d scratch restarts with a surviving buddy replica", sup.FromScratch)
	}
	// The restore node is a replica holder, so the chain read is served
	// from its own disk (local) or another buddy — never only the server.
	near := c.Counters.Get("repl.read_local") + c.Counters.Get("repl.read_buddy")
	if near == 0 {
		t.Fatalf("restore never read from a nearby replica (local=%d buddy=%d remote=%d)",
			c.Counters.Get("repl.read_local"), c.Counters.Get("repl.read_buddy"),
			c.Counters.Get("repl.read_remote"))
	}
}

// TestReplicationErasureSurvivesOwnerLoss runs the 2+1 erasure geometry
// (three worker disks, no server copies), kills the owner, and requires
// the restore to decode from the two surviving shards.
func TestReplicationErasureSurvivesOwnerLoss(t *testing.T) {
	prog := workload.Sparse{MiB: 1, WriteFrac: 0.2, Seed: 43}
	want := referenceFingerprint(t, prog, 60)
	c := newCluster(t, 4, prog)
	sup := replicatedSupervisor(t, c, prog, 60,
		&ReplicationConfig{Mode: ReplErasure, DataShards: 2, ParityShards: 1})
	killed := false
	c.OnStep(func() {
		if !killed && c.Now() >= simtime.Time(8*simtime.Millisecond) {
			killed = true
			c.Fail(0)
		}
	})
	if err := sup.Run(2 * simtime.Second); err != nil {
		t.Fatal(err)
	}
	if !sup.Completed || sup.Fingerprint != want {
		t.Fatalf("completed=%v fingerprint=%#x want %#x (restarts=%d scratch=%d)",
			sup.Completed, sup.Fingerprint, want, sup.Restarts, sup.FromScratch)
	}
	if sup.Restarts == 0 {
		t.Fatal("the node kill caused no failover")
	}
	if sup.FromScratch != 0 {
		t.Fatalf("%d scratch restarts with n-1 shards surviving", sup.FromScratch)
	}
	// Losing the owner loses shard 0, so the restore must have solved for
	// it from parity.
	if n := c.Counters.Get("repl.read_reconstruct"); n == 0 {
		t.Fatalf("owner loss never forced a parity reconstruct (shards=%d reconstruct=%d)",
			c.Counters.Get("repl.read_shards"), n)
	}
	// Erasure placement has no server slot: nothing may land there.
	if objs := c.Node(1).Remote().List(); len(objs) != 0 {
		t.Fatalf("erasure mode leaked %d objects to the server: %v", len(objs), objs)
	}
}

// TestReplicationRepairConvergesAfterBuddyLoss kills a BUDDY (not the
// owner): the job never fails over, but the placement loses a replica
// holder. The repair sweep must reassign the slot to a fresh node
// (EvRebuddy) and re-replicate the chain onto it, restoring full
// redundancy while the job keeps running.
func TestReplicationRepairConvergesAfterBuddyLoss(t *testing.T) {
	prog := workload.Sparse{MiB: 1, WriteFrac: 0.2, Seed: 44}
	c := newCluster(t, 4, prog)
	// RepairAfter below the interval so the reassignment happens well
	// within the run.
	sup := replicatedSupervisor(t, c, prog, 200,
		&ReplicationConfig{Mode: ReplBuddy, RepairAfter: 2 * simtime.Millisecond})
	var buddy int
	killed := false
	c.OnStep(func() {
		if !killed && c.Now() >= simtime.Time(10*simtime.Millisecond) {
			if p := sup.ReplicaPlacement(); len(p) >= 2 {
				killed = true
				buddy = p[1]
				c.FailKind(buddy, Permanent)
			}
		}
	})
	if err := sup.Run(2 * simtime.Second); err != nil {
		t.Fatal(err)
	}
	if !killed {
		t.Fatal("no placement formed before the kill point")
	}
	if !sup.Completed {
		t.Fatalf("job did not complete (ckpts=%d restarts=%d)", sup.Checkpoints, sup.Restarts)
	}
	if n := c.Counters.Get("repl.rebuddy"); n == 0 {
		t.Fatal("dead buddy's slot was never reassigned")
	}
	if n := c.Counters.Get("repl.repaired"); n == 0 {
		t.Fatal("no replicas were re-replicated after the reassignment")
	}
	placement := sup.ReplicaPlacement()
	for _, slot := range placement {
		if slot == buddy {
			t.Fatalf("dead node %d still holds a placement slot: %v", buddy, placement)
		}
	}
	// Redundancy has converged: the recovery pointer is on every current
	// slot, including the replacement buddy.
	leaf := sup.LastLeaf()
	for _, slot := range placement {
		var tgt storage.Target
		if slot < 0 {
			tgt = c.Node(sup.node).Remote()
		} else {
			tgt = c.Node(slot).Disk
		}
		if _, err := tgt.ReadObject(leaf, nil); err != nil {
			t.Fatalf("leaf %s missing on slot %d after repair: %v", leaf, slot, err)
		}
	}
	sawRebuddy, sawRepair := false, false
	for _, ev := range sup.Events {
		switch ev.Kind {
		case EvRebuddy:
			sawRebuddy = true
		case EvRepair:
			sawRepair = true
		}
	}
	if !sawRebuddy || !sawRepair {
		t.Fatalf("event log missing rebuddy/repair (rebuddy=%v repair=%v)", sawRebuddy, sawRepair)
	}
}

// TestReplicationPipelinedShipping exercises the replicated fan-out
// through the pipelined publish path (publishUnit instead of the
// synchronous pump) and checks quorum publishes and placement land the
// same way.
func TestReplicationPipelinedShipping(t *testing.T) {
	prog := workload.Sparse{MiB: 1, WriteFrac: 0.2, Seed: 45}
	// A 1 MiB full image needs ~25ms on the modeled wire+spindle; the job
	// must outlive several transfers for the pipelined path to drain.
	want := referenceFingerprint(t, prog, 300)
	c := newCluster(t, 4, prog)
	mon := detector.NewMonitor(c, detector.NewTimeout(2*simtime.Millisecond),
		detector.Config{Period: 200 * simtime.Microsecond, Observer: 3}, c.Counters)
	sup := MustNewSupervisor(SupervisorConfig{
		C:           c,
		MkMech:      func() mechanism.Mechanism { return syslevel.NewCRAK() },
		Prog:        prog,
		Iterations:  300,
		Policy:      policy.Fixed(3 * simtime.Millisecond),
		Detector:    mon,
		ControlNode: 3,
		Incremental: true,
		RebaseEvery: 8,
		Pipeline:    &PipelineConfig{MaxInFlight: 2},
		Replication: &ReplicationConfig{Mode: ReplBuddy},
	})
	if err := sup.Run(2 * simtime.Second); err != nil {
		t.Fatal(err)
	}
	if !sup.Completed || sup.Fingerprint != want {
		t.Fatalf("completed=%v fingerprint=%#x want %#x", sup.Completed, sup.Fingerprint, want)
	}
	if n := c.Counters.Get("pipe.shipped"); n == 0 {
		t.Fatal("nothing went through the pipelined path")
	}
	if n := c.Counters.Get("repl.publishes"); n == 0 {
		t.Fatal("pipelined publishes never fanned out to the replica set")
	}
	leaf := sup.LastLeaf()
	for _, slot := range sup.ReplicaPlacement() {
		if slot < 0 {
			continue
		}
		if _, err := c.Node(slot).Disk.ReadObject(leaf, nil); err != nil {
			t.Fatalf("leaf %s missing on node %d disk: %v", leaf, slot, err)
		}
	}
}

// TestPipelineStaleQueueDropAccounting locks the ship-queue bookkeeping
// on the fence path: when a stale agent's queued units die with its
// self-fence, every queued image is counted dropped exactly once and
// none of them is also counted shipped.
func TestPipelineStaleQueueDropAccounting(t *testing.T) {
	prog := workload.Sparse{MiB: 1, WriteFrac: 0.2, Seed: 46}
	c := newCluster(t, 2, prog)
	mon := detector.NewMonitor(c, detector.NewTimeout(2*simtime.Millisecond),
		detector.Config{Period: 200 * simtime.Microsecond, Observer: 1}, c.Counters)
	sup := MustNewSupervisor(SupervisorConfig{
		C:           c,
		MkMech:      func() mechanism.Mechanism { return syslevel.NewCRAK() },
		Prog:        prog,
		Iterations:  60,
		Policy:      policy.Fixed(3 * simtime.Millisecond),
		Detector:    mon,
		ControlNode: 1,
		Pipeline:    &PipelineConfig{},
	})
	sup.Fence = storage.NewFenceDomain("job", c.Counters)
	epoch := sup.Fence.Advance()
	a := &ckptAgent{s: sup, node: 0, pid: 1, epoch: epoch}
	a.ship = []*shipUnit{
		{imgs: []shipImage{{obj: "u1-a", data: []byte("aa")}, {obj: "u1-b", data: []byte("bb")}}},
		{imgs: []shipImage{{obj: "u2-a", data: []byte("cc")}}},
	}
	// Supersede the agent, then let it try to drain: the first publish
	// hits the fence, the agent self-fences, and all three queued images
	// must be dropped — not shipped, not double-counted.
	sup.Fence.Advance()
	a.advanceShip(c.Node(0))
	c.RunFor(simtime.Second) // the transfer completes on cluster time
	a.advanceShip(c.Node(0))
	if !a.stopped {
		t.Fatal("stale agent did not self-fence on the queued publish")
	}
	if got := c.Counters.Get("pipe.dropped"); got != 3 {
		t.Fatalf("pipe.dropped = %d, want 3", got)
	}
	if got := c.Counters.Get("pipe.shipped"); got != 0 {
		t.Fatalf("pipe.shipped = %d, want 0 for an all-stale queue", got)
	}
	if got := c.Counters.Get("fence.suicides"); got != 1 {
		t.Fatalf("fence.suicides = %d, want 1", got)
	}
}

// TestReplicationConfigValidation rejects geometries the cluster cannot
// place and out-of-range quorums at construction time.
func TestReplicationConfigValidation(t *testing.T) {
	prog := workload.Sparse{MiB: 1, WriteFrac: 0.2, Seed: 47}
	c := newCluster(t, 4, prog) // 3 worker nodes
	mon := detector.NewMonitor(c, detector.NewTimeout(2*simtime.Millisecond),
		detector.Config{Period: 200 * simtime.Microsecond, Observer: 3}, c.Counters)
	base := SupervisorConfig{
		C:           c,
		MkMech:      func() mechanism.Mechanism { return syslevel.NewCRAK() },
		Prog:        prog,
		Iterations:  10,
		Policy:      policy.Fixed(simtime.Millisecond),
		Detector:    mon,
		ControlNode: 3,
	}
	cases := []struct {
		name string
		rc   *ReplicationConfig
		det  bool // strip the detector
		frag string
	}{
		{"unknown mode", &ReplicationConfig{Mode: "raid"}, false, "unknown Mode"},
		{"no detector", &ReplicationConfig{Mode: ReplBuddy}, true, "requires a Detector"},
		{"too many buddies", &ReplicationConfig{Mode: ReplBuddy, Buddies: 3}, false, "worker nodes"},
		{"erasure too wide", &ReplicationConfig{Mode: ReplErasure, DataShards: 3, ParityShards: 2}, false, "worker nodes"},
		{"quorum below k", &ReplicationConfig{Mode: ReplErasure, DataShards: 2, ParityShards: 1, WriteQuorum: 1}, false, "outside"},
		{"quorum too high", &ReplicationConfig{Mode: ReplBuddy, WriteQuorum: 9}, false, "exceeds"},
	}
	for _, tc := range cases {
		cfg := base
		cfg.Replication = tc.rc
		if tc.det {
			cfg.Detector = nil
		}
		_, err := NewSupervisor(cfg)
		if err == nil || !strings.Contains(err.Error(), tc.frag) {
			t.Fatalf("%s: error %v does not mention %q", tc.name, err, tc.frag)
		}
	}
	// And the happy path still constructs.
	cfg := base
	cfg.Replication = &ReplicationConfig{Mode: ReplErasure, DataShards: 2, ParityShards: 1}
	if _, err := NewSupervisor(cfg); err != nil {
		t.Fatalf("valid 2+1 geometry rejected: %v", err)
	}
}
