// The node-local checkpoint agent: in autonomic mode the supervisor no
// longer drives checkpoints synchronously from its control loop (that
// would require knowing the node is alive — an oracle). Instead each job
// incarnation gets a small daemon on its own node that checkpoints the
// process every Interval to the remote server, holding the fencing epoch
// it was started under. The agent is node-local code: it runs only while
// its machine does, and it keeps running after a false suspicion — which
// is exactly how a split brain forms, and exactly what the fenced target
// defuses.

package cluster

import (
	"errors"

	"repro/internal/mechanism"
	"repro/internal/simos/proc"
	"repro/internal/simtime"
	"repro/internal/storage"
)

// ckptAgent checkpoints one job incarnation from its own node.
type ckptAgent struct {
	s       *Supervisor
	node    int
	pid     proc.PID
	epoch   uint64 // fencing epoch this incarnation was admitted at
	nextAt  simtime.Time
	stopped bool
}

// armAgent starts a checkpoint agent for the incarnation of the job
// running as pid on node, admitted at the given fencing epoch.
func (s *Supervisor) armAgent(node int, pid proc.PID, epoch uint64) {
	s.agents = append(s.agents, &ckptAgent{
		s: s, node: node, pid: pid, epoch: epoch,
		nextAt: s.C.Now().Add(s.Interval),
	})
}

// pumpAgents runs every live agent once; registered as a cluster step
// hook by runAutonomic.
func (s *Supervisor) pumpAgents() {
	for _, a := range s.agents {
		a.pump()
	}
}

// pump is one scheduling quantum of the agent's life.
func (a *ckptAgent) pump() {
	if a.stopped {
		return
	}
	c := a.s.C
	// Node-local code executes only on a live machine. This is fidelity,
	// not an oracle: a dead node's daemon is simply not running.
	if !c.NodeAlive(a.node) {
		return
	}
	now := c.Now()
	if now < a.nextAt {
		return
	}
	a.nextAt = now.Add(a.s.Interval)
	n := c.Node(a.node)
	p, err := n.K.Procs.Lookup(a.pid)
	if err != nil {
		a.stopped = true // rebooted under us: the process is gone
		return
	}
	if p.State == proc.StateZombie {
		a.stopped = true // finished (or killed); nothing left to protect
		return
	}
	m, err := a.s.mech(a.node)
	if err != nil {
		a.s.Counters.Inc("agent.mech_failed", 1)
		return
	}
	tgt := storage.Target(n.Remote())
	if !a.s.NoFencing {
		tgt = storage.FencedAt(tgt, a.s.Fence, a.epoch)
	}
	tk, err := mechanism.Checkpoint(m, n.K, p, tgt, nil)
	if err != nil {
		if errors.Is(err, storage.ErrFenced) {
			// The server told us another incarnation owns the job now:
			// self-fence. Kill the local (superseded) process and stop —
			// the split brain ends here, with zero double commits.
			a.s.Counters.Inc("fence.suicides", 1)
			a.s.emit(EvSelfFence, a.node, a.epoch, "")
			if p.State != proc.StateZombie {
				n.K.Exit(p, 137)
			}
			n.K.Procs.Remove(p.PID)
			a.stopped = true
			return
		}
		a.s.Counters.Inc("agent.ckpt_failed", 1)
		return // transient storage trouble: try again next interval
	}
	if a.epoch == a.s.Fence.Epoch() {
		// Current incarnation: advertise the new leaf for recovery.
		a.s.Checkpoints++
		a.s.lastLeaf = tk.Img.ObjectName()
		a.s.lastNode = a.node
		a.s.lastLocal = false
		a.s.lastCkptDur = tk.Total()
		a.s.emit(EvAck, a.node, a.epoch, a.s.lastLeaf)
	} else {
		// A stale writer slipped a commit past the (disabled) fence:
		// this is a split-brain double commit, and it may have replaced
		// the live incarnation's image under the same object name.
		a.s.Counters.Inc("fence.double_commits", 1)
		a.s.emit(EvStaleCommit, a.node, a.epoch, tk.Img.ObjectName())
	}
}
