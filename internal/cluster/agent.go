// The node-local checkpoint agent: in autonomic mode the supervisor no
// longer drives checkpoints synchronously from its control loop (that
// would require knowing the node is alive — an oracle). Instead each job
// incarnation gets a small daemon on its own node that checkpoints the
// process every interval to the remote server, holding the fencing epoch
// it was started under. The agent is node-local code: it runs only while
// its machine does, and it keeps running after a false suspicion — which
// is exactly how a split brain forms, and exactly what the fenced target
// defuses.
//
// With Supervisor.Incremental set the agent ships delta chains instead
// of full images: it arms one dirty-page tracker per incarnation, sends
// only the ranges written since the previous checkpoint (chained onto
// it), and every rebaseEvery-th round publishes a fresh full image that
// bounds the chain — at which point everything the new full supersedes
// is garbage-collected through the same fenced target the publishes go
// through.

package cluster

import (
	"errors"

	"repro/internal/checkpoint"
	"repro/internal/mechanism"
	"repro/internal/simos/proc"
	"repro/internal/simtime"
	"repro/internal/storage"
)

// ckptAgent checkpoints one job incarnation from its own node.
type ckptAgent struct {
	s       *Supervisor
	node    int
	pid     proc.PID
	epoch   uint64 // fencing epoch this incarnation was admitted at
	nextAt  simtime.Time
	stopped bool

	// Incremental-shipping state. trk is the incarnation's dirty
	// tracker, armed lazily on the first capture; the carry wrapper
	// keeps a failed round's collected ranges from vanishing. acked
	// counts this incarnation's successful captures and drives the
	// rebase cadence.
	trk   *checkpoint.CarryTracker
	acked int

	// Pipelined-shipping state (Supervisor.Pipeline non-nil): the
	// bounded FIFO of encoded images on their way to the server, and the
	// flag a ship failure raises so the next capture re-anchors the
	// chain with a full image (see pipeline.go).
	ship        []*shipUnit
	forceRebase bool
}

// armAgent starts a checkpoint agent for the incarnation of the job
// running as pid on node, admitted at the given fencing epoch.
func (s *Supervisor) armAgent(node int, pid proc.PID, epoch uint64) {
	s.agents = append(s.agents, &ckptAgent{
		s: s, node: node, pid: pid, epoch: epoch,
		nextAt: s.C.Now().Add(s.agentInterval()),
	})
}

// pumpAgents runs every agent once and compacts stopped agents out of
// the slice; registered as a cluster step hook by runAutonomic. Without
// the compaction a long run leaks one dead agent per incarnation and
// scans them all forever.
func (s *Supervisor) pumpAgents() {
	s.pumpLazy()
	live := s.agents[:0]
	for _, a := range s.agents {
		a.pump()
		if a.stopped {
			continue
		}
		live = append(live, a)
	}
	for i := len(live); i < len(s.agents); i++ {
		s.agents[i] = nil // release for GC
	}
	s.agents = live
	s.maybeRepair()
}

// stop retires the agent and releases its tracker (restoring the
// process's page protections). In-flight ship units die with the agent —
// they belong to an incarnation that no longer needs protecting.
func (a *ckptAgent) stop() {
	a.stopped = true
	if a.trk != nil {
		a.trk.Close()
		a.trk = nil
	}
	if n := a.queuedImages(); n > 0 {
		a.s.Counters.Inc("pipe.dropped", int64(n))
		a.ship = nil
	}
}

// selfFence ends a superseded incarnation: the server said another
// incarnation owns the job now, so kill the local (stale) process and
// retire the agent — the split brain ends here, with zero double
// commits.
func (a *ckptAgent) selfFence(n *Node, p *proc.Process) {
	a.s.Counters.Inc("fence.suicides", 1)
	a.s.emit(EvSelfFence, a.node, a.epoch, "")
	if p != nil {
		if p.State != proc.StateZombie {
			n.K.Exit(p, 137)
		}
		n.K.Procs.Remove(p.PID)
	}
	a.stop()
}

// pump is one scheduling quantum of the agent's life.
func (a *ckptAgent) pump() {
	if a.stopped {
		return
	}
	c := a.s.C
	// Node-local code executes only on a live machine. This is fidelity,
	// not an oracle: a dead node's daemon is simply not running.
	if !c.NodeAlive(a.node) {
		return
	}
	n := c.Node(a.node)
	if a.s.Pipeline != nil {
		// Transfers progress on every pump, not just capture rounds —
		// that is the overlap the pipeline exists for.
		a.advanceShip(n)
		if a.stopped {
			return // the publish hit the fence: this incarnation is over
		}
	}
	now := c.Now()
	if now < a.nextAt {
		return
	}
	// Consult the interval policy afresh each pump: adaptive intervals
	// shorten as the MTBF estimate drops, which an arm-time snapshot of
	// s.Interval would never see.
	a.nextAt = now.Add(a.s.agentInterval())
	p, err := n.K.Procs.Lookup(a.pid)
	if err != nil {
		a.stop() // rebooted under us: the process is gone
		return
	}
	if p.State == proc.StateZombie {
		a.stop() // finished (or killed); nothing left to protect
		return
	}
	if a.s.lazy != nil && a.s.lazy.epoch == a.epoch {
		// This incarnation was lazy-restored and is still draining. A
		// capture sees only resident pages — and the tracker's arm-time
		// "everything resident" baseline has the same blind spot — so a
		// checkpoint taken now would silently omit every still-pending
		// page. Settle the session first; the capture below then sees the
		// complete memory image, byte-identical to an eager restore's.
		a.s.settleLazy()
	}
	m, err := a.s.mech(a.node)
	if err != nil {
		a.s.Counters.Inc("agent.mech_failed", 1)
		return
	}
	if a.s.Pipeline != nil {
		a.pipelineRound(m, n, p)
		return
	}
	tgt := a.s.shipTarget(a)
	tk, err := a.capture(m, n, p, tgt)
	if err != nil {
		if errors.Is(err, storage.ErrFenced) {
			// The server told us another incarnation owns the job now.
			a.selfFence(n, p)
			return
		}
		a.s.Counters.Inc("agent.ckpt_failed", 1)
		return // transient storage trouble: try again next interval
	}
	a.acked++
	if a.trk != nil {
		// The collection behind this capture is durably published; it
		// no longer needs carrying into the next delta.
		a.trk.Commit()
	}
	if a.epoch == a.s.Fence.Epoch() {
		a.s.noteAck(a, tk, tgt)
	} else {
		// A stale writer slipped a commit past the (disabled) fence:
		// this is a split-brain double commit, and it may have replaced
		// the live incarnation's image under the same object name.
		a.s.Counters.Inc("fence.double_commits", 1)
		a.s.emit(EvStaleCommit, a.node, a.epoch, tk.Img.ObjectName())
	}
}

// capture takes one checkpoint: a full image through the mechanism's
// plain path, or — with incremental shipping on and a capable mechanism
// — a tracker-driven delta chained onto the previous capture, rebased
// to a fresh full image every rebaseEvery rounds.
func (a *ckptAgent) capture(m mechanism.Mechanism, n *Node, p *proc.Process, tgt storage.Target) (*mechanism.Ticket, error) {
	dr, ok := m.(mechanism.DeltaRequester)
	if !a.s.Incremental || !ok {
		if ok && a.s.Replication != nil {
			// Replicated full-image mode still needs epoch-qualified
			// names: the server path just renamed a re-incarnated seq over
			// its predecessor, but replicas of the superseded write linger
			// on old placement disks, and an erasure read that mixes
			// shards of two same-named encodings is undecodable. A nil
			// tracker with rebase on is exactly a standalone full image.
			t, err := dr.RequestDelta(n.K, p, tgt, nil, nil, a.epoch, true)
			if err != nil {
				return nil, err
			}
			if err := mechanism.WaitTicket(n.K, t, 5*simtime.Minute); err != nil {
				return t, err
			}
			return t, nil
		}
		return mechanism.Checkpoint(m, n.K, p, tgt, nil)
	}
	// The incarnation's first successful checkpoint is always a rebase:
	// chains never span incarnations (the previous incarnation's chain
	// stays untouched until this full image supersedes it). A pipelined
	// ship failure also forces one — the dropped tail left the published
	// chain without its newest links, so the next image must stand alone.
	rebase := a.acked%a.s.rebaseEvery() == 0 || a.forceRebase
	var trk checkpoint.Tracker
	switch {
	case a.trk == nil:
		// Arm one tracker per incarnation, node-locally. Its first
		// collection returns everything resident, so passing it on the
		// incarnation's initial rebase still yields a complete image.
		// Under a live-content policy the liveness tracker replaces the
		// plain dirty tracker: it additionally watches reads and
		// withholds dead pages (overwritten before ever being read)
		// from the deltas it reports.
		var inner checkpoint.Tracker = checkpoint.NewKernelWPTracker(n.K, p)
		if spec := a.s.Policy.Spec(); spec.Liveness() {
			inner = checkpoint.NewKernelLivenessTracker(n.K, p, spec.DeadStreak)
		}
		t := checkpoint.NewCarryTracker(inner)
		if err := t.Arm(); err != nil {
			a.s.Counters.Inc("agent.trk_failed", 1)
		} else {
			a.trk = t
			trk = t
		}
	case !rebase:
		trk = a.trk
	default:
		// Rebase with a live tracker: capture WITHOUT it. A full image
		// must cover every resident page; a Collect here would return
		// only this epoch's dirty set — a hole in every delta hanging
		// off the rebase. The uncollected dirty set keeps accumulating,
		// so the next delta ships a safe superset.
	}
	t, err := dr.RequestDelta(n.K, p, tgt, nil, trk, a.epoch, rebase)
	if err != nil {
		return nil, err
	}
	if err := mechanism.WaitTicket(n.K, t, 5*simtime.Minute); err != nil {
		return t, err
	}
	return t, nil
}

// noteAck records a current-epoch acknowledged checkpoint in the
// supervisor's recovery pointers and, when a rebase made the prior
// history unreachable, garbage-collects it.
func (s *Supervisor) noteAck(a *ckptAgent, tk *mechanism.Ticket, tgt storage.Target) {
	s.noteAckObject(a, tk.Img.ObjectName(), tk.Img.Mode != checkpoint.ModeIncremental,
		tk.Stats.EncodedBytes, tk.Total(), tgt)
}

// noteAckObject is noteAck by value — the pipelined ship path acks an
// image long after its ticket completed, so it carries the object name,
// kind, size, and capture duration itself.
func (s *Supervisor) noteAckObject(a *ckptAgent, obj string, full bool,
	encodedBytes int, ckptDur simtime.Duration, tgt storage.Target) {
	s.Checkpoints++
	s.lastNode = a.node
	s.lastLocal = false
	s.Policy.ObserveCaptureCost(ckptDur)
	s.lastProgressAt = s.C.Now()
	s.Counters.Inc("ckpt.bytes_shipped", int64(encodedBytes))
	var retire []string
	if !full {
		s.Counters.Inc("ckpt.delta_acks", 1)
	} else {
		s.Counters.Inc("ckpt.full_acks", 1)
		// A full image supersedes the job's entire prior history: the
		// previous chain and any fenced-off incarnation's leftovers are
		// unreachable from the recovery pointer from here on — and only
		// from here on, which is why GC waits for exactly this ack.
		retire = append(s.pendingRetire, s.chainObjs...)
		s.pendingRetire = nil
		s.chainObjs = nil
		s.chainSizes = nil
		s.lastFull = obj
	}
	s.chainObjs = append(s.chainObjs, obj)
	if s.chainSizes == nil {
		s.chainSizes = make(map[string]int)
	}
	s.chainSizes[obj] = encodedBytes
	s.lastLeaf = obj
	s.emit(EvAck, a.node, a.epoch, obj)
	if s.Incremental && len(retire) > 0 {
		// GC is about to unlink superseded objects a draining lazy
		// session may still need for its deferred plan read: settle it
		// first (no-op when no session is live).
		s.settleLazy()
		s.retire(a, tgt, retire, obj)
	}
	if s.Incremental && !full {
		s.maybeCompact(a, tgt)
	}
}

// retire garbage-collects superseded checkpoint objects through the
// agent's fenced target: GC is a chain-head mutation, so a stale
// incarnation's deletes bounce off the fence exactly like its publishes
// would — a zombie can never unlink images the live chain still needs.
func (s *Supervisor) retire(a *ckptAgent, tgt storage.Target, objs []string, keep string) {
	var list []string
	for _, o := range objs {
		if o == keep || o == s.lastLeaf || o == s.lastFull {
			continue // never GC anything a recovery pointer reaches
		}
		list = append(list, o)
	}
	deleted, pending, err := storage.RetireChain(tgt, list)
	for _, o := range deleted {
		s.Counters.Inc("ckpt.retired", 1)
		s.emit(EvRetire, a.node, a.epoch, o)
	}
	if err == nil {
		return
	}
	if errors.Is(err, storage.ErrFenced) {
		// Superseded mid-sweep: the live incarnation owns the garbage
		// list now; touching it further would race its chain.
		s.Counters.Inc("fence.gc_rejected", 1)
		return
	}
	// Transient storage trouble: keep the tail queued for the sweep
	// after the next rebase.
	s.Counters.Inc("ckpt.gc_deferred", 1)
	s.pendingRetire = append(s.pendingRetire, pending...)
}
