// Lazy failover: restart before read. With Supervisor.LazyRestore set,
// recoverFenced restores the job from the leaf image alone — registers,
// layout, and the tracker's last dirty set — and returns control as soon
// as those hot pages are applied. The rest of the chain materializes on
// demand through checkpoint.LazySession: first-touch faults batch-read
// the ancestors through the same fenced target, and the supervisor's
// step hook drains the remaining plan oldest-first as a background
// prefetcher. A session superseded by a later failover aborts instead of
// serving state (the demand-fault service's self-fencing), and every GC
// that could unlink the session's ancestors — the new incarnation's
// first capture, a retire sweep, a server-side compaction — settles the
// session first, so lazy restore never trades durability for latency.

package cluster

import (
	"errors"

	"repro/internal/checkpoint"
	"repro/internal/costmodel"
	"repro/internal/mechanism"
	"repro/internal/simos/proc"
	"repro/internal/simtime"
	"repro/internal/storage"
)

// lazyPrefetchBatch is how many pending pages the background prefetcher
// serves per cluster step. Small enough that demand faults interleave,
// large enough that the plan drains in a handful of intervals.
const lazyPrefetchBatch = 8

// lazyRun tracks one in-flight lazy restore: the session serving demand
// faults, the fencing epoch it was admitted under, and the latency
// pieces finishLazy folds into the single restore.latency observation.
type lazyRun struct {
	sess     *checkpoint.LazySession
	epoch    uint64
	leafWait simtime.Duration // storage wait for the leaf read (pre-TTFI)
	chainLen int
}

// recoverLazy attempts the restart-before-read failover. It returns
// ok=false — no process, no error — when the lazy preconditions do not
// hold (no manifest for the recovery pointer, a mechanism without
// RestartLazy, an unreadable or torn leaf): the caller then falls back
// to the eager path, which re-discovers ancestry by walking parent
// links and classifies the storage failure itself.
func (s *Supervisor) recoverLazy(src storage.Target, spare int, epoch uint64, manifest []string) (*proc.Process, bool, error) {
	n := len(manifest)
	if s.lastLeaf == "" || src == nil || !src.Available() || n == 0 || manifest[n-1] != s.lastLeaf {
		return nil, false, nil
	}
	m, err := s.mech(spare)
	if err != nil {
		return nil, false, err
	}
	lr, ok := m.(mechanism.LazyRestarter)
	if !ok {
		return nil, false, nil
	}
	prepared := m.Prepare(s.Prog)
	if _, err := s.C.Node(spare).K.Registry.Lookup(prepared.Name()); err != nil {
		s.C.Node(spare).K.Registry.MustRegister(prepared)
	}

	// Only the leaf is read on the critical path; its wait is the read
	// half of the time-to-first-instruction.
	var leafWait simtime.Duration
	env := &storage.Env{Bill: costmodel.Discard{},
		Wait: func(d simtime.Duration, _ string) { leafWait += d }}
	blob, err := src.ReadObject(s.lastLeaf, env)
	if err != nil {
		return nil, false, nil
	}
	leaf, err := checkpoint.Decode(blob)
	if err != nil {
		s.Counters.Inc("ckpt.torn", 1)
		return nil, false, nil
	}

	p, sess, err := lr.RestartLazy(s.C.Node(spare).K, leaf, checkpoint.LazyOptions{
		RestoreOptions: checkpoint.RestoreOptions{Enqueue: true, Metrics: s.Metrics},
		Source:         src,
		Ancestors:      manifest[:n-1],
		Fenced:         func() bool { return s.Fence.Epoch() != epoch },
	})
	if err != nil {
		if errors.Is(err, checkpoint.ErrNeedsChain) {
			return nil, false, nil // manifest inconsistent with the leaf's mode
		}
		return nil, false, err
	}

	st := sess.Stats()
	ttfi := leafWait + checkpoint.RestoreCost(st.HotBytes, s.restoreWorkers())
	if s.Metrics != nil {
		s.Metrics.Hist("restore.first_instr_latency").Observe(float64(ttfi.Millis()))
		s.Metrics.Hist("restore.chain_len").Observe(float64(n))
	}
	s.Counters.Inc("restore.count", 1)
	s.Counters.Inc("restore.lazy", 1)
	s.emit(EvRestore, spare, epoch, s.lastLeaf+" lazy")
	s.lazy = &lazyRun{sess: sess, epoch: epoch, leafWait: leafWait, chainLen: n}
	return p, true, nil
}

// pumpLazy advances the background prefetcher one batch per cluster
// step and settles the session once the drain completes. A session
// whose epoch the fence has moved past is aborted instead: its process
// is a stale incarnation and must not keep materializing state.
func (s *Supervisor) pumpLazy() {
	if s.lazy == nil {
		return
	}
	if s.Fence != nil && s.Fence.Epoch() != s.lazy.epoch {
		s.failLazy(nil)
		return
	}
	if _, err := s.lazy.sess.Prefetch(lazyPrefetchBatch); err != nil {
		s.failLazy(err)
		return
	}
	if s.lazy.sess.Done() {
		s.finishLazy()
	}
}

// settleLazy force-drains the live session so every page is
// materialized now. Called wherever deferral would be unsound: before a
// capture of the lazy incarnation (a tracker or full capture sees only
// resident pages), before GC retires chain objects the session may
// still need to read, and at job completion.
func (s *Supervisor) settleLazy() {
	if s.lazy == nil {
		return
	}
	if err := s.lazy.sess.DrainAll(); err != nil {
		s.failLazy(err)
		return
	}
	s.finishLazy()
}

// finishLazy records the settled session's full restore latency — the
// leaf read, the deferred ancestor reads, and the replay of the whole
// post-pruning payload at the restore width. This is the lazy path's
// single outermost restore.latency observation site, mirroring
// observeRestore on the eager path; nothing else records it.
func (s *Supervisor) finishLazy() {
	lr := s.lazy
	s.lazy = nil
	st := lr.sess.Stats()
	lr.sess.Close()
	if s.Metrics != nil {
		lat := lr.leafWait + st.PlanWait +
			checkpoint.RestoreCost(st.PlanBytes, s.restoreWorkers())
		s.Metrics.Hist("restore.latency").Observe(float64(lat.Millis()))
	}
	s.Counters.Inc("restore.deltas_replayed", int64(lr.chainLen-1))
}

// failLazy poisons the live session: every later access of a
// still-pending page fails with err (ErrLazyAborted when nil). The
// demand-fill hook stays armed on purpose — a stale process must fault,
// not silently read zeroes.
func (s *Supervisor) failLazy(err error) {
	lr := s.lazy
	s.lazy = nil
	lr.sess.Abort(err)
	s.Counters.Inc("restore.lazy_aborted", 1)
}
