// Root supervisor: owns placement policy across the shard supervisors,
// the ground-truth fault schedule, and the merged orchestration-event
// log. The tick protocol is a barrier cycle: the root broadcasts the
// tick time to every shard loop, the shards process the tick in
// parallel against purely shard-local state, and at the barrier the
// root — alone — merges event batches in fixed shard order, applies
// scheduled ground-truth faults, and places cross-shard migrations.
// Parallelism is real (goroutine per shard, exercised by the -race
// suite); determinism survives because nothing crosses a shard boundary
// except through the barrier.

package cluster

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/simtime"
	"repro/internal/storage"
	"repro/internal/trace"
)

// migrateReq is one job a shard could not place locally, awaiting root
// placement.
type migrateReq struct {
	job  *fleetJob
	from int // source shard (owns the job's old chain objects)
}

// RootSupervisor drives a fleet of shard supervisors.
type RootSupervisor struct {
	cfg FleetConfig
	f   *Fleet

	shards []*shardSup

	// SC holds one counter slot per shard plus a final slot for the
	// root itself, so shard loops never contend on a shared mutex.
	SC      *trace.ShardedCounters
	rootCtr *trace.Counters

	detectHist   *trace.Histogram
	failoverHist *trace.Histogram

	// Events is the merged orchestration log; OnBatch, when set, sees
	// every flushed batch (bounded by EventBatch) as it lands.
	Events  []Event
	OnBatch func([]Event)

	batches  int
	maxBatch int

	pending []migrateReq
	ran     bool
	last    FleetStats
}

// NewRootSupervisor validates cfg, builds the fleet, the shard
// supervisors, and the initial job placement.
func NewRootSupervisor(cfg FleetConfig) (*RootSupervisor, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	r := &RootSupervisor{
		cfg:          cfg,
		f:            newFleet(cfg),
		SC:           trace.NewShardedCounters(cfg.Shards + 1),
		detectHist:   trace.NewHistogram(),
		failoverHist: trace.NewHistogram(),
	}
	r.rootCtr = r.SC.Shard(cfg.Shards)
	chunk := (cfg.Nodes + cfg.Shards - 1) / cfg.Shards
	for s := 0; s < cfg.Shards; s++ {
		lo := s * chunk
		hi := lo + chunk
		if hi > cfg.Nodes {
			hi = cfg.Nodes
		}
		if lo > hi {
			lo = hi
		}
		r.shards = append(r.shards, newShardSup(r, s, lo, hi-lo))
	}
	// Initial placement: jobs round-robin across shards, then across
	// each shard's members; every shard starts at fence epoch 1 so
	// epoch 0 never names a live writer.
	for _, sh := range r.shards {
		sh.fence.Advance()
	}
	for j := 0; j < cfg.Jobs; j++ {
		sh := r.shards[j%cfg.Shards]
		if sh.n == 0 {
			continue
		}
		epoch := sh.fence.Epoch()
		job := &fleetJob{
			id:    j,
			node:  sh.member((j / cfg.Shards) % sh.n),
			epoch: epoch,
			tgt:   sh.writerTarget(epoch),
		}
		sh.jobs = append(sh.jobs, job)
		sh.emit(0, EvAdmit, job.node, epoch, "")
	}
	return r, nil
}

// MustNewRootSupervisor panics on config error.
func MustNewRootSupervisor(cfg FleetConfig) *RootSupervisor {
	r, err := NewRootSupervisor(cfg)
	if err != nil {
		panic(err)
	}
	return r
}

// Fleet exposes the ground-truth substrate (tests, timer accounting).
func (r *RootSupervisor) Fleet() *Fleet { return r.f }

// NumShards returns the shard count.
func (r *RootSupervisor) NumShards() int { return r.cfg.Shards }

// Counters returns a merged snapshot of every shard's counters plus the
// root's.
func (r *RootSupervisor) Counters() *trace.Counters { return r.SC.Merged() }

// Stats returns the last Run's statistics.
func (r *RootSupervisor) Stats() FleetStats { return r.last }

// FailAt schedules a ground-truth failure of node at sim offset at; a
// non-permanent failure reboots after repair. Must be called before Run.
func (r *RootSupervisor) FailAt(at simtime.Duration, node int, perm bool, repair simtime.Duration) error {
	if node < 0 || node >= r.cfg.Nodes {
		return fmt.Errorf("cluster: fleet failure targets node %d outside [0,%d)", node, r.cfg.Nodes)
	}
	if r.ran {
		return fmt.Errorf("cluster: fleet fault scheduled after Run")
	}
	r.f.faults = append(r.f.faults, fleetFault{at: simtime.Time(at), node: node, perm: perm, repair: repair})
	return nil
}

// shardOfNode returns the shard owning a global node id.
func (r *RootSupervisor) shardOfNode(node int) *shardSup {
	for _, sh := range r.shards {
		if node >= sh.base && node < sh.base+sh.n {
			return sh
		}
	}
	return nil
}

// Run drives the fleet for d of simulated time and returns the run's
// statistics. One Run per supervisor: fence epochs, chains, and the
// event log all carry across ticks, not across runs.
func (r *RootSupervisor) Run(d simtime.Duration) FleetStats {
	if r.ran {
		panic("cluster: RootSupervisor.Run called twice")
	}
	r.ran = true
	sort.SliceStable(r.f.faults, func(i, j int) bool { return r.f.faults[i].at < r.f.faults[j].at })

	var wg sync.WaitGroup
	for _, sh := range r.shards {
		wg.Add(1)
		go func(sh *shardSup) {
			defer wg.Done()
			sh.loop()
		}(sh)
	}

	ticks := int(d / r.cfg.Tick)
	if ticks < 1 {
		ticks = 1
	}
	for t := 0; t < ticks; t++ {
		now := r.f.now.Add(r.cfg.Tick)
		r.f.now = now
		for _, sh := range r.shards {
			sh.tickCh <- now
		}
		for _, sh := range r.shards {
			<-sh.doneCh
		}
		r.barrier(now)
	}
	for _, sh := range r.shards {
		close(sh.tickCh)
	}
	wg.Wait()

	r.last = r.stats(ticks, d)
	return r.last
}

// barrier runs between ticks, with every shard loop parked: merge event
// batches in shard order, place cross-shard migrations, then apply the
// ground-truth fault schedule for the next tick.
func (r *RootSupervisor) barrier(now simtime.Time) {
	for _, sh := range r.shards {
		if len(sh.batch) > 0 {
			r.flush(sh.batch)
			sh.batch = nil
		}
	}

	var reqs []migrateReq
	reqs = append(reqs, r.pending...)
	r.pending = nil
	for _, sh := range r.shards {
		for _, job := range sh.askMigrate {
			reqs = append(reqs, migrateReq{job: job, from: sh.id})
		}
		sh.askMigrate = nil
	}
	var rootBatch []Event
	for _, req := range reqs {
		rootBatch = append(rootBatch, r.place(req, now)...)
	}
	if len(rootBatch) > 0 {
		r.flush(rootBatch)
	}

	r.applyFaults(now)
}

// place admits one migrating job into the shard with the most
// unsuspected members, copying its newest checkpoint into the target
// shard's namespace and retiring the source-side chain under the source
// shard's own fence domain. Returns the root's orchestration events.
func (r *RootSupervisor) place(req migrateReq, now simtime.Time) []Event {
	job := req.job
	best, bestFree := -1, 0
	for _, sh := range r.shards {
		if free := sh.unsuspectedCount(); free > bestFree {
			best, bestFree = sh.id, free
		}
	}
	if best < 0 {
		r.rootCtr.Inc("fleet.unplaced", 1)
		r.pending = append(r.pending, req)
		return nil
	}
	tgt := r.shards[best]
	src := r.shards[req.from]
	cand := tgt.pickMember()
	epoch := tgt.fence.Epoch()
	if old := job.node; !r.f.alive[old] {
		// Cross-shard migration is this job's failover; record its
		// latency like a shard-local one.
		r.failoverHist.Observe(now.Sub(r.f.downAt[old]).Millis())
	}
	job.node, job.epoch, job.tgt = cand, epoch, tgt.writerTarget(epoch)

	var evs []Event
	evs = append(evs, Event{At: now, Kind: EvAdmit, Node: cand, Epoch: epoch})
	// Carry the newest checkpoint across the shard boundary: the root
	// (not the target shard) reads the source chain, and the source's
	// leftovers are retired through the SOURCE's fence domain — the
	// target never holds a handle into another shard's store.
	migrated := ""
	if job.last != "" {
		if data, err := src.store.ReadObject(job.last, nil); err == nil {
			job.seq++
			obj := tgt.objName(job.id, epoch, job.seq)
			if storage.Write(job.tgt, obj, data, storage.WriteOptions{Atomic: true}) == nil {
				migrated = obj
			}
		}
	}
	srcTgt := src.writerTarget(src.fence.Epoch())
	for _, o := range job.objs {
		if strings.HasPrefix(o, src.prefix) && srcTgt.Delete(o) == nil {
			evs = append(evs, Event{At: now, Kind: EvRetire, Node: cand, Epoch: epoch, Object: o})
		}
	}
	if migrated != "" {
		job.last, job.objs = migrated, []string{migrated}
		evs = append(evs, Event{At: now, Kind: EvRestore, Node: cand, Epoch: epoch, Object: migrated})
	} else {
		job.last, job.objs, job.seq = "", nil, 0
		evs = append(evs, Event{At: now, Kind: EvScratch, Node: cand, Epoch: epoch})
	}
	pos := sort.Search(len(tgt.jobs), func(i int) bool { return tgt.jobs[i].id >= job.id })
	tgt.jobs = append(tgt.jobs, nil)
	copy(tgt.jobs[pos+1:], tgt.jobs[pos:])
	tgt.jobs[pos] = job
	r.rootCtr.Inc("fleet.migrations", 1)
	return evs
}

// applyFaults applies every scheduled failure and due reboot at the
// barrier — the only place ground truth mutates, with all shard loops
// parked.
func (r *RootSupervisor) applyFaults(now simtime.Time) {
	f := r.f
	for len(f.faults) > 0 && f.faults[0].at <= now {
		ft := f.faults[0]
		f.faults = f.faults[1:]
		if !f.alive[ft.node] {
			continue
		}
		f.alive[ft.node] = false
		f.downAt[ft.node] = now
		f.perm[ft.node] = ft.perm
		if sh := r.shardOfNode(ft.node); sh != nil {
			sh.credited[ft.node-sh.base] = false
		}
		r.rootCtr.Inc("fleet.failures", 1)
		if !ft.perm {
			f.reboots = append(f.reboots, fleetReboot{at: now.Add(ft.repair), node: ft.node})
		}
	}
	kept := f.reboots[:0]
	for _, rb := range f.reboots {
		if rb.at <= now {
			f.alive[rb.node] = true
			r.rootCtr.Inc("fleet.reboots", 1)
		} else {
			kept = append(kept, rb)
		}
	}
	f.reboots = kept
}

// flush appends events to the merged log in bounded batches.
func (r *RootSupervisor) flush(evs []Event) {
	for len(evs) > 0 {
		n := len(evs)
		if n > r.cfg.EventBatch {
			n = r.cfg.EventBatch
		}
		b := evs[:n]
		evs = evs[n:]
		r.Events = append(r.Events, b...)
		r.batches++
		if n > r.maxBatch {
			r.maxBatch = n
		}
		r.rootCtr.Inc("events.flushed", int64(n))
		r.rootCtr.Inc("events.batches", 1)
		if r.OnBatch != nil {
			r.OnBatch(b)
		}
	}
}

// ReadObject resolves a shard-namespaced object name ("s<id>/...") to
// the owning shard's store — the audit read path for the scenario
// harness's durability checks.
func (r *RootSupervisor) ReadObject(name string) ([]byte, error) {
	rest, ok := strings.CutPrefix(name, "s")
	if !ok {
		return nil, fmt.Errorf("cluster: object %q outside any shard namespace", name)
	}
	slash := strings.IndexByte(rest, '/')
	if slash < 0 {
		return nil, fmt.Errorf("cluster: object %q outside any shard namespace", name)
	}
	id, err := strconv.Atoi(rest[:slash])
	if err != nil || id < 0 || id >= len(r.shards) {
		return nil, fmt.Errorf("cluster: object %q names unknown shard", name)
	}
	return r.shards[id].store.ReadObject(name, nil)
}

// stats assembles the run summary from merged counters and histograms.
func (r *RootSupervisor) stats(ticks int, d simtime.Duration) FleetStats {
	m := r.SC.Merged()
	ds := r.detectHist.Snapshot()
	fs := r.failoverHist.Snapshot()
	return FleetStats{
		Nodes:          r.cfg.Nodes,
		Shards:         r.cfg.Shards,
		Jobs:           r.cfg.Jobs,
		Ticks:          ticks,
		SimMillis:      d.Millis(),
		Events:         len(r.Events),
		Batches:        r.batches,
		MaxBatch:       r.maxBatch,
		Checkpoints:    m.Get("fleet.ckpt_acks"),
		Failovers:      m.Get("fleet.failovers"),
		Migrations:     m.Get("fleet.migrations"),
		Unplaced:       m.Get("fleet.unplaced"),
		Detections:     ds.N,
		DetectP50:      ds.P50,
		DetectP99:      ds.P99,
		FailoverP50:    fs.P50,
		FailoverP99:    fs.P99,
		FalsePositives: m.Get("det.false_positives"),
		SelfFences:     m.Get("fence.self_fence"),
		DoubleCommits:  m.Get("fence.double_commits"),
		Timers:         r.f.Timers(),
	}
}
