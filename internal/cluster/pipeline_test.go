package cluster

import (
	"math/rand"
	"testing"

	"repro/internal/detector"
	"repro/internal/mechanism"
	"repro/internal/policy"
	"repro/internal/simos/proc"
	"repro/internal/simtime"
	"repro/internal/storage"
	"repro/internal/syslevel"
	"repro/internal/workload"
)

// The tentpole end to end: the pipelined shipping path survives a real
// node failure mid-chain and restores correctly — and every EvAck it
// emits is checked for durability AT EVENT TIME, because "ack after
// publish returns" is the one ordering pipelining is most tempted to
// break.
func TestPipelinedAutonomicFailoverAndAckDurability(t *testing.T) {
	prog := workload.Sparse{MiB: 1, WriteFrac: 0.2, Seed: 31}
	want := referenceFingerprint(t, prog, 300)

	c := newCluster(t, 4, prog)
	mon := detector.NewMonitor(c, detector.NewTimeout(2*simtime.Millisecond),
		detector.Config{Period: 200 * simtime.Microsecond, Observer: 3}, c.Counters)
	// A 1 MiB full image needs ~25ms on the modeled wire+spindle, so the
	// kill lands at 40ms: after the chain anchor (and a delta or two)
	// acked, while the job is still running.
	failed := false
	c.OnStep(func() {
		if !failed && c.Now() >= simtime.Time(40*simtime.Millisecond) {
			failed = true
			c.Fail(0)
		}
	})

	rem := c.Node(3).Remote()
	sup := MustNewSupervisor(SupervisorConfig{
		C:           c,
		MkMech:      func() mechanism.Mechanism { return syslevel.NewCRAK() },
		Prog:        prog,
		Iterations:  300,
		Policy:      policy.Fixed(1500 * simtime.Microsecond),
		Detector:    mon,
		Incremental: true,
		RebaseEvery: 3,
		ControlNode: 3,
		Pipeline:    &PipelineConfig{},
		OnEvent: func(ev Event) {
			// Acked-durability invariant: the moment an ack is emitted, the
			// object must already be committed on the server. A pipeline
			// that acked at capture (or at transfer start) fails here.
			if ev.Kind == EvAck && ev.Object != "" {
				if _, err := rem.ObjectSize(ev.Object); err != nil {
					t.Errorf("EvAck for %s before it was durable: %v", ev.Object, err)
				}
			}
		},
	})
	if err := sup.Run(2 * simtime.Second); err != nil {
		t.Fatal(err)
	}
	if !sup.Completed {
		t.Fatalf("job did not complete (ckpts=%d restarts=%d counters:\n%s)",
			sup.Checkpoints, sup.Restarts, c.Counters)
	}
	if sup.Fingerprint != want {
		t.Fatalf("fingerprint %#x want %#x", sup.Fingerprint, want)
	}
	if sup.Restarts == 0 {
		t.Fatal("the node failure caused no failover")
	}
	if n := c.Counters.Get("pipe.shipped"); n == 0 {
		t.Fatal("pipelined run shipped nothing through the pipe")
	}
	if snap := sup.Metrics.Hist("pipe.publish_latency").Snapshot(); snap.N == 0 {
		t.Fatal("no publish-latency observations recorded")
	} else if snap.P99 < snap.P50 || snap.P50 <= 0 {
		t.Fatalf("degenerate publish-latency distribution: %s", snap)
	}
	for _, k := range []string{"ckpt.torn", "ckpt.lost", "fence.double_commits"} {
		if n := c.Counters.Get(k); n != 0 {
			t.Fatalf("%s = %d, want 0", k, n)
		}
	}
}

// A publish failure mid-pipeline must drop every queued image (they all
// chain onto the failed one) and force the next capture to re-anchor the
// chain with a full image. White-box: the agent is pumped directly so
// the fault window can be placed exactly.
func TestPipelinedShipFailureDropsChainAndRebases(t *testing.T) {
	prog := workload.Sparse{MiB: 1, WriteFrac: 0.2, Seed: 33}
	c := newCluster(t, 2, prog)
	mon := detector.NewMonitor(c, detector.NewTimeout(2*simtime.Millisecond),
		detector.Config{Period: 200 * simtime.Microsecond, Observer: 1}, c.Counters)
	p, err := c.Node(0).K.Spawn(prog.Name())
	if err != nil {
		t.Fatal(err)
	}
	workload.SetIterations(p, 1_000_000) // must outlive the test window

	sup := MustNewSupervisor(SupervisorConfig{
		C:           c,
		MkMech:      func() mechanism.Mechanism { return syslevel.NewCRAK() },
		Prog:        prog,
		Iterations:  1_000_000, // unused: agents are pumped directly, Run never starts
		Policy:      policy.Fixed(500 * simtime.Microsecond),
		Detector:    mon,
		ControlNode: 1,
		Incremental: true,
		RebaseEvery: 100, // one full, then deltas only — until the failure forces a rebase
		Counters:    c.Counters,
		Fence:       storage.NewFenceDomain("job", c.Counters),
		Pipeline:    &PipelineConfig{BatchBytes: -1}, // one unit per image: the drop math is exact
	})
	epoch := sup.Fence.Advance()
	sup.armAgent(0, p.PID, epoch)
	c.OnStep(sup.pumpAgents)

	// Healthy phase: the chain anchors (full) and grows (delta).
	if !c.RunUntil(func() bool {
		return c.Counters.Get("ckpt.full_acks") >= 1 && c.Counters.Get("ckpt.delta_acks") >= 1
	}, simtime.Second) {
		t.Fatalf("chain never anchored and grew (counters:\n%s)", c.Counters)
	}

	// Break every server write: the next transfer to complete fails its
	// publish, and nothing behind it can ever satisfy the durable-parent
	// rule.
	c.Server.SetFaults(&storage.FaultPolicy{WriteFault: 1, Rng: rand.New(rand.NewSource(7))})
	if !c.RunUntil(func() bool { return c.Counters.Get("agent.ship_failed") >= 1 }, simtime.Second) {
		t.Fatalf("server faults never surfaced as a ship failure (counters:\n%s)", c.Counters)
	}
	if n := c.Counters.Get("pipe.dropped"); n == 0 {
		t.Fatal("ship failure dropped nothing — the dependent queue should die with it")
	}

	// Heal. The next acked image must be a full rebase: the published
	// chain lost its newest links, so a delta chained onto them would be
	// an unreachable orphan.
	fullsBefore := c.Counters.Get("ckpt.full_acks")
	c.Server.SetFaults(nil)
	if !c.RunUntil(func() bool { return c.Counters.Get("ckpt.full_acks") > fullsBefore }, simtime.Second) {
		t.Fatalf("no full-image rebase re-anchored the chain after the failure healed (counters:\n%s)", c.Counters)
	}
}

// The split-brain scenario of TestAutonomicFalseSuspicionIsFencedAndRecovers
// with the pipelined path on: the stale incarnation's queued publishes
// bounce off the fence, it self-fences, and not one double commit leaks
// — the pipeline's deferred publishes get exactly the sync path's safety.
func TestPipelinedFalseSuspicionSelfFences(t *testing.T) {
	prog := workload.Sparse{MiB: 1, WriteFrac: 0.2, Seed: 31}
	// Long enough that the job is still running when the stale
	// incarnation's in-flight transfer (~25ms for a 1 MiB full) finally
	// reaches the server and bounces off the fence.
	want := referenceFingerprint(t, prog, 300)

	c := newCluster(t, 4, prog)
	np := c.EnableNetFaults(NetFaultConfig{})
	mon := detector.NewMonitor(c, detector.NewTimeout(2*simtime.Millisecond),
		detector.Config{Period: 200 * simtime.Microsecond, Observer: 3}, c.Counters)
	cut, healed := false, false
	c.OnStep(func() {
		if !cut && c.Now() >= simtime.Time(7*simtime.Millisecond) {
			cut = true
			np.Partition("island", 0)
		}
		if cut && !healed && c.Now() >= simtime.Time(17*simtime.Millisecond) {
			healed = true
			np.Heal("island")
		}
	})

	sup := MustNewSupervisor(SupervisorConfig{
		C:           c,
		MkMech:      func() mechanism.Mechanism { return syslevel.NewCRAK() },
		Prog:        prog,
		Iterations:  300,
		Policy:      policy.Fixed(3 * simtime.Millisecond),
		Detector:    mon,
		ControlNode: 3,
		Pipeline:    &PipelineConfig{},
	})
	if err := sup.Run(2 * simtime.Second); err != nil {
		t.Fatal(err)
	}
	if !sup.Completed {
		t.Fatalf("job did not complete (ckpts=%d restarts=%d counters:\n%s)",
			sup.Checkpoints, sup.Restarts, c.Counters)
	}
	if sup.Fingerprint != want {
		t.Fatalf("fingerprint %#x want %#x", sup.Fingerprint, want)
	}
	if sup.Restarts == 0 {
		t.Fatal("the partition caused no failover")
	}
	if n := c.Counters.Get("fence.suicides"); n == 0 {
		t.Fatal("stale incarnation never self-fenced")
	}
	if n := c.Counters.Get("fence.double_commits"); n != 0 {
		t.Fatalf("fence.double_commits = %d, want 0 (a queued stale publish leaked)", n)
	}
	if sup.OracleReads != 0 {
		t.Fatalf("autonomic supervisor read ground truth %d times", sup.OracleReads)
	}
	if p, err := c.Node(0).K.Procs.Lookup(1); err == nil && p.State == proc.StateRunning {
		t.Fatal("stale process still running after self-fence")
	}
}

// While a big full image crosses the wire, the small deltas captured
// behind it must coalesce into one batched publish instead of queuing a
// message each.
func TestPipelinedDeltaBatching(t *testing.T) {
	prog := workload.Sparse{MiB: 1, WriteFrac: 0.2, Seed: 31}
	want := referenceFingerprint(t, prog, 80)

	c := newCluster(t, 2, prog)
	mon := detector.NewMonitor(c, detector.NewTimeout(2*simtime.Millisecond),
		detector.Config{Period: 200 * simtime.Microsecond, Observer: 1}, c.Counters)

	sup := MustNewSupervisor(SupervisorConfig{
		C:           c,
		MkMech:      func() mechanism.Mechanism { return syslevel.NewCRAK() },
		Prog:        prog,
		Iterations:  80,
		Policy:      policy.Fixed(300 * simtime.Microsecond), // captures far faster than a full image ships
		Detector:    mon,
		ControlNode: 1,
		Incremental: true,
		RebaseEvery: 100,
		Pipeline:    &PipelineConfig{MaxInFlight: 4},
	})
	if err := sup.Run(2 * simtime.Second); err != nil {
		t.Fatal(err)
	}
	if !sup.Completed {
		t.Fatalf("job did not complete (ckpts=%d restarts=%d counters:\n%s)",
			sup.Checkpoints, sup.Restarts, c.Counters)
	}
	if sup.Fingerprint != want {
		t.Fatalf("fingerprint %#x want %#x", sup.Fingerprint, want)
	}
	if n := c.Counters.Get("pipe.batched"); n == 0 {
		t.Fatalf("no deltas batched behind the full-image transfer (counters:\n%s)", c.Counters)
	}
	if n := c.Counters.Get("fence.double_commits"); n != 0 {
		t.Fatalf("fence.double_commits = %d, want 0", n)
	}
}
