package cluster

import (
	"math/rand"
	"testing"

	"repro/internal/costmodel"
	"repro/internal/mechanism"
	"repro/internal/policy"
	"repro/internal/simos/kernel"
	"repro/internal/simos/proc"
	"repro/internal/simtime"
	"repro/internal/syslevel"
	"repro/internal/workload"
)

func newCluster(t *testing.T, nodes int, progs ...kernel.Program) *Cluster {
	t.Helper()
	reg := kernel.NewRegistry()
	for _, p := range progs {
		reg.MustRegister(p)
	}
	return New(Config{Nodes: nodes, Seed: 1, KernelCfg: kernel.DefaultConfig("")},
		costmodel.Default2005(), reg)
}

func TestClusterStepAdvancesAllNodes(t *testing.T) {
	prog := workload.Spin{Tag: "x"}
	c := newCluster(t, 3, prog)
	for _, n := range c.Nodes() {
		if _, err := n.K.Spawn(prog.Name()); err != nil {
			t.Fatal(err)
		}
	}
	c.RunFor(10 * simtime.Millisecond)
	for i, n := range c.Nodes() {
		if n.K.Now() < c.Now()-simtime.Time(simtime.Millisecond) {
			t.Fatalf("node %d clock lags: %v vs %v", i, n.K.Now(), c.Now())
		}
		p, _ := n.K.Procs.Lookup(1)
		if p.CPUTime == 0 {
			t.Fatalf("node %d made no progress", i)
		}
	}
}

func TestFailStopKillsProcessesAndDisk(t *testing.T) {
	prog := workload.Spin{Tag: "x"}
	c := newCluster(t, 2, prog)
	n := c.Node(0)
	p, _ := n.K.Spawn(prog.Name())
	c.RunFor(simtime.Millisecond)
	w, _ := n.Disk.Create("ck", nil)
	w.Write([]byte("img"))
	w.Commit()

	c.Fail(0)
	if n.Alive() || !n.K.Halted() {
		t.Fatal("node not failed")
	}
	if p.State != proc.StateZombie {
		t.Fatalf("process state %v after fail-stop", p.State)
	}
	if n.Disk.Available() {
		t.Fatal("dead node's disk reachable")
	}
	c.Fail(0) // idempotent

	// Reboot: fresh kernel, disk contents intact.
	c.Reboot(0)
	if !n.Alive() {
		t.Fatal("reboot failed")
	}
	if n.K.Procs.Len() != 0 {
		t.Fatal("old processes survived reboot")
	}
	if _, err := n.Disk.ReadObject("ck", nil); err != nil {
		t.Fatalf("disk lost data across reboot: %v", err)
	}
	if n.K.Now() < c.Now() {
		t.Fatal("rebooted kernel clock behind cluster")
	}
}

func TestClusterMail(t *testing.T) {
	c := newCluster(t, 2)
	var got []string
	c.OnDeliver(1, func(p any) { got = append(got, p.(string)) })
	if err := c.Send(0, 1, "hello", 1024); err != nil {
		t.Fatal(err)
	}
	c.RunFor(simtime.Millisecond)
	if len(got) != 1 || got[0] != "hello" {
		t.Fatalf("mail = %v", got)
	}
	// Mail to a dead node is dropped (fail-stop).
	c.Fail(1)
	c.Send(0, 1, "lost", 10)
	c.RunFor(simtime.Millisecond)
	if len(got) != 1 {
		t.Fatal("dead node received mail")
	}
	// A dead node cannot send.
	if err := c.Send(1, 0, "x", 1); err == nil {
		t.Fatal("dead node sent mail")
	}
}

func TestMigrateProcessAcrossNodes(t *testing.T) {
	prog := workload.Sparse{MiB: 2, WriteFrac: 0.2, Seed: 12, Iterations: 20}
	// Reference.
	cRef := newCluster(t, 1, prog)
	pr, _ := cRef.Node(0).K.Spawn(prog.Name())
	cRef.RunUntil(func() bool { return pr.State == proc.StateZombie }, simtime.Minute)
	want := workload.Fingerprint(pr)

	c := newCluster(t, 2, prog)
	p, _ := c.Node(0).K.Spawn(prog.Name())
	c.RunUntil(func() bool { return p.Regs().PC >= 10 }, simtime.Minute)
	p2, err := Migrate(c, NewMechPool(c, func() mechanism.Mechanism { return syslevel.NewCRAK() }), 0, 1, p.PID)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Node(0).K.Procs.Lookup(p.PID); err == nil {
		t.Fatal("original still on source node")
	}
	if !c.RunUntil(func() bool { return p2.State == proc.StateZombie }, simtime.Minute) {
		t.Fatal("migrated process stuck")
	}
	if got := workload.Fingerprint(p2); got != want {
		t.Fatalf("fingerprint %#x want %#x", got, want)
	}
}

func TestGangPreemptResume(t *testing.T) {
	prog := workload.Sparse{MiB: 1, WriteFrac: 0.3, Seed: 2, Iterations: 30}
	c := newCluster(t, 3, prog)
	var members []GangMember
	for i := 0; i < 3; i++ {
		p, err := c.Node(i).K.Spawn(prog.Name())
		if err != nil {
			t.Fatal(err)
		}
		members = append(members, GangMember{Node: i, PID: p.PID})
	}
	c.RunUntil(func() bool {
		p, err := c.Node(0).K.Procs.Lookup(members[0].PID)
		return err == nil && p.Regs().PC >= 5
	}, simtime.Minute)

	g := NewGang(c, func() mechanism.Mechanism { return syslevel.NewCRAK() }, members)
	if err := g.Preempt(); err != nil {
		t.Fatal(err)
	}
	if err := g.Preempt(); err == nil {
		t.Fatal("double preempt accepted")
	}
	// Nodes are free: no member processes remain.
	for _, mb := range members {
		if _, err := c.Node(mb.Node).K.Procs.Lookup(mb.PID); err == nil {
			t.Fatal("member still running after preempt")
		}
	}
	// Another job can use the nodes meanwhile.
	c.RunFor(10 * simtime.Millisecond)

	procs, err := g.Resume()
	if err != nil {
		t.Fatal(err)
	}
	if len(procs) != 3 {
		t.Fatalf("resumed %d", len(procs))
	}
	for _, p := range procs {
		p := p
		if !c.RunUntil(func() bool { return p.State == proc.StateZombie }, simtime.Minute) {
			t.Fatal("resumed member stuck")
		}
		if p.ExitCode != 0 {
			t.Fatalf("exit %d", p.ExitCode)
		}
	}
}

func TestSupervisorSurvivesFailuresWithRemoteStorage(t *testing.T) {
	prog := workload.Sparse{MiB: 1, WriteFrac: 0.2, Seed: 31}
	// Reference fingerprint.
	cRef := newCluster(t, 1, prog)
	pr, _ := cRef.Node(0).K.Spawn(prog.Name())
	workload.SetIterations(pr, 60)
	cRef.RunUntil(func() bool { return pr.State == proc.StateZombie }, simtime.Minute)
	want := workload.Fingerprint(pr)

	c := newCluster(t, 3, prog)
	sup := MustNewSupervisor(SupervisorConfig{
		C:          c,
		MkMech:     func() mechanism.Mechanism { return syslevel.NewCRAK() },
		Prog:       prog,
		Iterations: 60,
		Policy:     policy.Fixed(5 * simtime.Millisecond),
	})
	// Kill the job's node twice, mid-run.
	killAt := []simtime.Duration{12 * simtime.Millisecond, 30 * simtime.Millisecond}
	go func() {}() // no goroutines needed; we fail via injected steps below
	done := make(chan struct{})
	_ = done
	// Drive failures manually: run supervisor in segments.
	errCh := func() error {
		// Interleave: we can't run Supervisor.Run and fail nodes at exact
		// times without hooks, so use the injector instead.
		inj := NewInjector(Exponential{Mean: 25 * simtime.Millisecond}, 2*simtime.Millisecond, 7, 3)
		c.SetInjector(inj)
		_ = killAt
		return sup.Run(2 * simtime.Second)
	}()
	if errCh != nil {
		t.Fatal(errCh)
	}
	if !sup.Completed {
		t.Fatalf("job did not complete (ckpts=%d restarts=%d)", sup.Checkpoints, sup.Restarts)
	}
	if sup.Fingerprint != want {
		t.Fatalf("fingerprint %#x want %#x", sup.Fingerprint, want)
	}
	if sup.Checkpoints == 0 {
		t.Fatal("no checkpoints were taken")
	}
}

func TestYoungAndDaly(t *testing.T) {
	ckpt := 30 * simtime.Second
	mtbf := 12 * simtime.Hour
	y := YoungInterval(ckpt, mtbf)
	// sqrt(2*30*43200) s = sqrt(2592000) ≈ 1609.97 s
	if y < 1600*simtime.Second || y > 1620*simtime.Second {
		t.Fatalf("Young = %v", y)
	}
	d := DalyInterval(ckpt, mtbf)
	if d < y-ckpt-60*simtime.Second || d > y+60*simtime.Second {
		t.Fatalf("Daly = %v vs Young %v", d, y)
	}
	if YoungInterval(0, mtbf) != mtbf {
		t.Fatal("degenerate Young")
	}
}

func TestYoungIntervalIsAnalyticOptimum(t *testing.T) {
	// Sweep fixed intervals around Young's optimum; expected makespan must
	// be minimized near it (within the sweep's resolution).
	work := 48 * simtime.Hour
	ckpt := 5 * simtime.Minute
	mtbf := 10 * simtime.Hour
	opt := YoungInterval(ckpt, mtbf)

	evaluate := func(iv simtime.Duration) simtime.Duration {
		cfg := JobConfig{
			Work: work, CkptCost: ckpt, RestartCost: 2 * simtime.Minute,
			RepairTime: 5 * simtime.Minute,
			Policy:     policy.Fixed(iv),
			Storage:    StoreRemote,
		}
		return AverageResult(cfg, Exponential{Mean: mtbf}, 42, 40).Makespan
	}
	mkOpt := evaluate(opt)
	mkShort := evaluate(opt / 8)
	mkLong := evaluate(opt * 8)
	if mkOpt >= mkShort {
		t.Fatalf("Young (%v) not better than too-frequent (%v): %v vs %v", opt, opt/8, mkOpt, mkShort)
	}
	if mkOpt >= mkLong {
		t.Fatalf("Young (%v) not better than too-rare (%v): %v vs %v", opt, opt*8, mkOpt, mkLong)
	}
}

func TestAnalyticStoragePolicies(t *testing.T) {
	// E5's shape: none ≫ local ≫ remote in makespan when failures can be
	// permanent; local ≈ remote when all failures are transient.
	base := JobConfig{
		Work: 24 * simtime.Hour, CkptCost: 2 * simtime.Minute,
		RestartCost: time2m(), RepairTime: 10 * simtime.Minute,
		Policy: policy.Fixed(30 * simtime.Minute),
	}
	fm := Exponential{Mean: 4 * simtime.Hour}

	run := func(st StoragePolicy, permFrac float64) JobResult {
		cfg := base
		cfg.Storage = st
		cfg.PermanentFrac = permFrac
		if st == StoreNone {
			cfg.Policy = policy.Spec{}
		}
		return AverageResult(cfg, fm, 7, 30)
	}

	remote := run(StoreRemote, 0.5)
	local := run(StoreLocal, 0.5)
	none := run(StoreNone, 0.5)
	if !(remote.Makespan < local.Makespan && local.Makespan < none.Makespan) {
		t.Fatalf("makespans: remote %v local %v none %v, want remote<local<none",
			remote.Makespan, local.Makespan, none.Makespan)
	}
	if remote.LostWork >= none.LostWork {
		t.Fatal("remote storage should lose less work than no checkpoints")
	}

	// With only transient failures, local ≈ remote (both restart from the
	// last checkpoint after the reboot).
	remoteT := run(StoreRemote, 0)
	localT := run(StoreLocal, 0)
	ratio := float64(localT.Makespan) / float64(remoteT.Makespan)
	if ratio > 1.05 || ratio < 0.95 {
		t.Fatalf("transient-only: local/remote makespan ratio %.3f, want ≈1", ratio)
	}
}

func TestAdaptiveYoungConvergesToOracle(t *testing.T) {
	// The autonomic policy (online MTBF estimate) must approach the
	// oracle (true-MTBF Young interval) makespan.
	cfg := JobConfig{
		Work: 72 * simtime.Hour, CkptCost: 3 * simtime.Minute,
		RestartCost: 2 * simtime.Minute, RepairTime: 5 * simtime.Minute,
		Storage:   StoreRemote,
		PriorMTBF: 100 * simtime.Hour, // badly wrong prior
	}
	fm := Exponential{Mean: 6 * simtime.Hour}

	oracle := cfg
	oracle.Policy = policy.Fixed(YoungInterval(cfg.CkptCost, fm.Mean))
	adaptive := cfg
	adaptive.Policy = policy.AdaptiveYoung(cfg.CkptCost)

	ro := AverageResult(oracle, fm, 11, 40)
	ra := AverageResult(adaptive, fm, 11, 40)
	if !ro.Completed || !ra.Completed {
		t.Fatal("runs did not complete")
	}
	ratio := float64(ra.Makespan) / float64(ro.Makespan)
	if ratio > 1.15 {
		t.Fatalf("adaptive makespan %.3f× oracle, want ≤1.15×", ratio)
	}
}

func TestFailureModels(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	exp := Exponential{Mean: simtime.Hour}
	var s float64
	const n = 20000
	for i := 0; i < n; i++ {
		s += float64(exp.NextGap(rng))
	}
	mean := s / n
	if mean < 0.95*float64(simtime.Hour) || mean > 1.05*float64(simtime.Hour) {
		t.Fatalf("exponential sample mean %.3g, want ≈1h", mean)
	}

	w := Weibull{Scale: simtime.Hour, Shape: 1.5}
	if w.MTBF() <= 0 {
		t.Fatal("weibull MTBF")
	}
	s = 0
	for i := 0; i < n; i++ {
		s += float64(w.NextGap(rng))
	}
	mean = s / n
	if mean < 0.9*float64(w.MTBF()) || mean > 1.1*float64(w.MTBF()) {
		t.Fatalf("weibull sample mean %.3g vs MTBF %.3g", mean, float64(w.MTBF()))
	}
}

func TestMTBFEstimator(t *testing.T) {
	e := NewMTBFEstimator(100 * simtime.Hour)
	if e.Estimate() != 100*simtime.Hour {
		t.Fatal("prior not used")
	}
	e.ObserveUptime(10 * simtime.Hour)
	e.ObserveFailure()
	e.ObserveUptime(6 * simtime.Hour)
	e.ObserveFailure()
	if got := e.Estimate(); got != 8*simtime.Hour {
		t.Fatalf("estimate %v, want 8h", got)
	}
	if e.Failures() != 2 {
		t.Fatal("failure count")
	}
}

func TestInjectorFiresAndRepairs(t *testing.T) {
	prog := workload.Spin{Tag: "x"}
	c := newCluster(t, 2, prog)
	inj := NewInjector(Exponential{Mean: 5 * simtime.Millisecond}, simtime.Millisecond, 9, 2)
	var fails int
	inj.OnFail = func(c *Cluster, node int, kind FailureKind) { fails++ }
	c.SetInjector(inj)
	c.RunFor(50 * simtime.Millisecond)
	if fails == 0 {
		t.Fatal("injector never fired")
	}
	// Transient failures repair: eventually both nodes are alive again.
	c.RunFor(5 * simtime.Millisecond)
	alive := 0
	for _, n := range c.Nodes() {
		if n.Alive() {
			alive++
		}
	}
	if alive == 0 {
		t.Fatal("no nodes recovered")
	}
}

func TestSimulateJobNoFailures(t *testing.T) {
	cfg := JobConfig{
		Work: simtime.Hour, CkptCost: simtime.Minute,
		Policy:  policy.Fixed(10 * simtime.Minute),
		Storage: StoreRemote,
	}
	// MTBF effectively infinite.
	r := SimulateJob(cfg, Exponential{Mean: simtime.Duration(1 << 60)}, rand.New(rand.NewSource(1)))
	if !r.Completed || r.Failures != 0 {
		t.Fatalf("result %+v", r)
	}
	// 5 interior checkpoints (6 segments of 10min in 60min of work).
	if r.Checkpoints != 5 {
		t.Fatalf("checkpoints = %d, want 5", r.Checkpoints)
	}
	want := cfg.Work + 5*cfg.CkptCost
	if r.Makespan != want {
		t.Fatalf("makespan %v, want %v", r.Makespan, want)
	}
}

func time2m() simtime.Duration { return 2 * simtime.Minute }

func TestMechPoolCachesPerNode(t *testing.T) {
	prog := workload.Dense{MiB: 1}
	c := newCluster(t, 2, prog)
	calls := 0
	pool := NewMechPool(c, func() mechanism.Mechanism {
		calls++
		return syslevel.NewCRAK()
	})
	m0a, err := pool.For(0)
	if err != nil {
		t.Fatal(err)
	}
	m0b, _ := pool.For(0)
	if m0a != m0b {
		t.Fatal("pool returned different instances for one node")
	}
	if _, err := pool.For(1); err != nil {
		t.Fatal(err)
	}
	if calls != 2 {
		t.Fatalf("factory called %d times, want 2", calls)
	}
}

func TestSupervisorLocalDiskLosesProgressOnPermanentFailure(t *testing.T) {
	prog := workload.Sparse{MiB: 1, WriteFrac: 0.2, Seed: 41}
	c := newCluster(t, 3, prog)
	sup := MustNewSupervisor(SupervisorConfig{
		C:            c,
		MkMech:       func() mechanism.Mechanism { return syslevel.NewCRAK() },
		Prog:         prog,
		Iterations:   400,
		Policy:       policy.Fixed(4 * simtime.Millisecond),
		UseLocalDisk: true,
	})
	// All failures permanent: local checkpoints die with the node.
	inj := NewInjector(Exponential{Mean: 30 * simtime.Millisecond}, 2*simtime.Millisecond, 3, 3)
	inj.PermanentFrac = 1.0
	c.SetInjector(inj)
	if err := sup.Run(2 * simtime.Second); err != nil {
		// Running out of spare nodes is an acceptable outcome of all-
		// permanent failures; the assertion below still applies if any
		// restart happened.
		if sup.Restarts == 0 {
			t.Skipf("no failures materialized: %v", err)
		}
	}
	if sup.Restarts > 0 && sup.FromScratch == 0 {
		t.Fatalf("restarts %d happened but none were from scratch — local checkpoints should have died with their node", sup.Restarts)
	}
}

func TestNodeRemoteSharesServer(t *testing.T) {
	c := newCluster(t, 2)
	w, err := c.Node(0).Remote().Create("obj", nil)
	if err != nil {
		t.Fatal(err)
	}
	w.Write([]byte("x"))
	w.Commit()
	if _, err := c.Node(1).Remote().ReadObject("obj", nil); err != nil {
		t.Fatalf("node1 cannot read node0's remote checkpoint: %v", err)
	}
}

func TestInjectorPermanentFailuresDoNotRepair(t *testing.T) {
	prog := workload.Spin{Tag: "x"}
	c := newCluster(t, 1, prog)
	inj := NewInjector(Exponential{Mean: 2 * simtime.Millisecond}, simtime.Millisecond, 5, 1)
	inj.PermanentFrac = 1.0
	c.SetInjector(inj)
	c.RunFor(50 * simtime.Millisecond)
	if c.Node(0).Alive() {
		t.Fatal("permanently failed node came back")
	}
	if c.FindSpare(-1) != -1 && c.Node(0).Alive() {
		t.Fatal("spare search inconsistent")
	}
}

func TestWeibullStoragePoliciesSameShape(t *testing.T) {
	// The E5 ordering holds under a wear-out (Weibull) failure law too.
	base := JobConfig{
		Work: 24 * simtime.Hour, CkptCost: 2 * simtime.Minute,
		RestartCost: 2 * simtime.Minute, RepairTime: 10 * simtime.Minute,
		Policy:        policy.Fixed(30 * simtime.Minute),
		PermanentFrac: 0.5,
	}
	fm := Weibull{Scale: 8 * simtime.Hour, Shape: 1.5}
	run := func(st StoragePolicy) JobResult {
		cfg := base
		cfg.Storage = st
		if st == StoreNone {
			cfg.Policy = policy.Spec{}
		}
		return AverageResult(cfg, fm, 17, 25)
	}
	remote, local, none := run(StoreRemote), run(StoreLocal), run(StoreNone)
	if !(remote.Makespan < local.Makespan && local.Makespan < none.Makespan) {
		t.Fatalf("weibull makespans: remote %v local %v none %v", remote.Makespan, local.Makespan, none.Makespan)
	}
}
