// Per-shard fence-domain isolation regression tests: each shard owns an
// independent fence domain over an independent store, so a stale writer
// fenced in shard A must not be able to publish into shard B under any
// name, and shard-local GC must refuse to delete outside its own
// namespace.

package cluster

import (
	"errors"
	"testing"

	"repro/internal/simtime"
	"repro/internal/storage"
)

// A writer fenced out of shard A stays fenced whatever object name it
// targets — including names inside shard B's namespace — and nothing it
// attempts ever lands in shard B's store.
func TestShardFenceStaleWriterCannotCrossShards(t *testing.T) {
	r := MustNewRootSupervisor(fleetCfg(4, 2, 2, 17))
	shA, shB := r.shards[0], r.shards[1]

	stale := shA.writerTarget(shA.fence.Epoch())
	shA.fence.Advance() // supersede it

	for _, name := range []string{"s000/stale-own", "s001/stale-foreign"} {
		err := storage.Write(stale, name, []byte("stale"), storage.WriteOptions{Atomic: true})
		if !errors.Is(err, storage.ErrFenced) {
			t.Fatalf("stale writer publish %q: err = %v, want ErrFenced", name, err)
		}
	}
	if _, err := shB.store.ReadObject("s001/stale-foreign", nil); err == nil {
		t.Fatal("stale shard-A writer landed an object in shard B's store")
	}
	// A current shard-B writer is untouched by shard A's advance.
	cur := shB.writerTarget(shB.fence.Epoch())
	if err := storage.Write(cur, "s001/live", []byte("live"), storage.WriteOptions{Atomic: true}); err != nil {
		t.Fatalf("shard-A fence advance disturbed shard B's writer: %v", err)
	}
}

// Shard-local GC refuses foreign-namespace names outright: the delete is
// not attempted, the refusal is counted, and the foreign object
// survives.
func TestShardGCRefusesForeignPrefix(t *testing.T) {
	r := MustNewRootSupervisor(fleetCfg(4, 2, 2, 19))
	shA, shB := r.shards[0], r.shards[1]

	cur := shB.writerTarget(shB.fence.Epoch())
	if err := storage.Write(cur, "s001/victim", []byte("keep me"), storage.WriteOptions{Atomic: true}); err != nil {
		t.Fatal(err)
	}
	job := shA.jobs[0]
	shA.retire(0, job, "s001/victim")
	if got := shA.ctr.Get("fence.gc_foreign"); got != 1 {
		t.Fatalf("fence.gc_foreign = %d, want 1", got)
	}
	if _, err := shB.store.ReadObject("s001/victim", nil); err != nil {
		t.Fatalf("shard A's GC deleted shard B's object: %v", err)
	}
}

// End-to-end: a full run with failovers in one shard never produces
// retire events for another shard's namespace from that shard, and
// every shard's store only ever holds its own prefix.
func TestShardStoresStayNamespaced(t *testing.T) {
	cfg := fleetCfg(8, 2, 8, 37)
	cfg.DigestLoss = 0.25
	cfg.DetectAfter = 2 * simtime.Millisecond
	r := MustNewRootSupervisor(cfg)
	if err := r.FailAt(15*simtime.Millisecond, 1, true, 0); err != nil {
		t.Fatal(err)
	}
	r.Run(150 * simtime.Millisecond)
	for _, sh := range r.shards {
		for _, name := range sh.store.List() {
			if len(name) < len(sh.prefix) || name[:len(sh.prefix)] != sh.prefix {
				t.Fatalf("shard %d store holds foreign object %q", sh.id, name)
			}
		}
	}
	if got := r.Counters().Get("fence.gc_foreign"); got != 0 {
		t.Fatalf("fence.gc_foreign = %d during normal operation, want 0", got)
	}
}
