package cluster

import (
	"testing"

	"repro/internal/mechanism"
	"repro/internal/policy"
	"repro/internal/simtime"
	"repro/internal/syslevel"
	"repro/internal/workload"
)

// TestPolicyTelemetrySingleObservation is the telemetry audit for the
// policy engine: the `policy.interval` histogram must hold exactly one
// observation per recompute (recomputes happen on observation events —
// failures and acked captures — never per agent pump tick), and the
// `policy.work_lost` histogram exactly one observation per observed
// failure. A per-tick leak would show up as orders of magnitude more
// samples than recomputes, since the pump runs on every cluster step.
func TestPolicyTelemetrySingleObservation(t *testing.T) {
	prog := workload.Sparse{MiB: 1, WriteFrac: 0.2, Seed: 5}
	c := newClusterSeed(t, 3, 42, prog)
	c.SetInjector(NewInjector(Exponential{Mean: 15 * simtime.Millisecond}, 2*simtime.Millisecond, 9, 2))
	sup := MustNewSupervisor(SupervisorConfig{
		C:          c,
		MkMech:     func() mechanism.Mechanism { return syslevel.NewCRAK() },
		Prog:       prog,
		Iterations: 60,
		Policy:     policy.YoungDaly(5 * simtime.Millisecond),
	})
	if err := sup.Run(2 * simtime.Second); err != nil {
		t.Fatal(err)
	}
	if !sup.Completed {
		t.Fatal("job did not complete")
	}

	failures := sup.Estimator.Failures()
	if failures == 0 {
		t.Fatal("injector produced no failures; the audit needs observation events")
	}
	if sup.Checkpoints == 0 {
		t.Fatal("no checkpoints were taken")
	}

	ivN := sup.Metrics.Hist("policy.interval").N()
	if ivN != sup.Policy.Recomputes() {
		t.Errorf("policy.interval observations = %d, want one per recompute (%d)",
			ivN, sup.Policy.Recomputes())
	}
	if ivN == 0 {
		t.Error("policy.interval never observed despite failures and captures")
	}
	// Every recompute is an observation event: a failure or an acked
	// capture. Anything beyond that sum means something ticked the
	// histogram outside the event discipline.
	if maxEvents := failures + sup.Checkpoints; ivN > maxEvents {
		t.Errorf("policy.interval observations = %d exceed observation events (%d failures + %d ckpts)",
			ivN, failures, sup.Checkpoints)
	}

	if wlN := sup.Metrics.Hist("policy.work_lost").N(); wlN != failures {
		t.Errorf("policy.work_lost observations = %d, want one per failure (%d)", wlN, failures)
	}

	if got := c.Counters.Get("policy.recompute"); got != int64(sup.Policy.Recomputes()) {
		t.Errorf("policy.recompute counter = %d, want %d", got, sup.Policy.Recomputes())
	}

	// The cadence actually moved off the base once failures were
	// measured: MTBF here (~15ms) with ms-scale capture costs puts the
	// Young optimum well below the 5ms base.
	if sup.Policy.Interval() == sup.Policy.Base() && sup.Policy.Recomputes() > 0 && failures > 1 {
		t.Logf("note: live cadence %v still at base after %d recomputes", sup.Policy.Interval(), sup.Policy.Recomputes())
	}
}
