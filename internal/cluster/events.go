// Orchestration events: a structured, deterministic log of everything
// the supervisor and its node-local agents decide or observe. The chaos
// harness (internal/chaos) subscribes a registry of invariant checkers
// here, and the determinism regression tests assert that two runs of the
// same seed produce byte-identical renderings of this log. Events are
// facts about the orchestration layer only — no simulator ground truth
// flows through them.

package cluster

import (
	"fmt"
	"strings"

	"repro/internal/simtime"
)

// EventKind labels one orchestration event.
type EventKind string

// Orchestration event kinds.
const (
	// EvAdmit: a job incarnation was admitted (started or restarted) on
	// Node at fencing Epoch.
	EvAdmit EventKind = "admit"
	// EvAck: a checkpoint by the current incarnation was published and
	// acknowledged; Object names the committed image.
	EvAck EventKind = "ack"
	// EvStaleCommit: a stale-epoch incarnation's publish LANDED (only
	// possible with fencing disabled) — the split-brain double commit.
	EvStaleCommit EventKind = "stale-commit"
	// EvSelfFence: a stale incarnation was rejected by the storage server
	// and killed itself.
	EvSelfFence EventKind = "self-fence"
	// EvFailover: the supervisor acted on a suspicion of Node; Epoch is
	// the new (post-Advance) fencing epoch.
	EvFailover EventKind = "failover"
	// EvRestore: recovery restarted the job from the checkpoint chain
	// whose leaf is Object.
	EvRestore EventKind = "restore"
	// EvScratch: recovery found no usable checkpoint and restarted the
	// job from the beginning.
	EvScratch EventKind = "scratch"
	// EvComplete: the job finished; Object carries the result
	// fingerprint in hex.
	EvComplete EventKind = "complete"
	// EvRetire: chain garbage collection deleted the superseded
	// checkpoint Object after a rebase made it unreachable from the
	// recovery pointer.
	EvRetire EventKind = "retire"
	// EvCompact: the supervisor folded the live chain into a fresh full
	// image published under Object (the chain's own leaf name); the
	// folded ancestors are retired afterwards, each with its own EvRetire.
	EvCompact EventKind = "compact"
	// EvRebuddy: the replication policy reassigned a placement slot away
	// from a suspected node; Node is the slot's new holder and Object
	// records "slot=<i> from=<old>".
	EvRebuddy EventKind = "rebuddy"
	// EvRepair: a background re-replication sweep restored missing
	// replicas; Object records how many replica copies were rewritten.
	EvRepair EventKind = "repair"
)

// Event is one entry of the supervisor's orchestration log.
type Event struct {
	At     simtime.Time
	Kind   EventKind
	Node   int
	Epoch  uint64
	Object string
}

// String renders the event in the fixed format the determinism tests
// compare byte-for-byte.
func (e Event) String() string {
	s := fmt.Sprintf("%dns %s node=%d epoch=%d", int64(e.At), e.Kind, e.Node, e.Epoch)
	if e.Object != "" {
		s += " " + e.Object
	}
	return s
}

// FormatEvents renders an event log one event per line.
func FormatEvents(evs []Event) string {
	var b strings.Builder
	for _, e := range evs {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// emit appends an event to the supervisor's log and notifies OnEvent.
func (s *Supervisor) emit(kind EventKind, node int, epoch uint64, object string) {
	ev := Event{At: s.C.Now(), Kind: kind, Node: node, Epoch: epoch, Object: object}
	s.Events = append(s.Events, ev)
	if s.OnEvent != nil {
		s.OnEvent(ev)
	}
}
