// Network fault model: the paper's "direction forward" (§5) is autonomic
// recovery, and recovery driven by message-based failure detection is
// only honest if the messages themselves can be lost, delayed,
// duplicated, or cut off by a partition. NetPolicy mirrors
// storage.FaultPolicy one layer down: per-message fault draws from a
// cluster-seeded RNG, with net.* counters so experiments can report
// exactly what the network did to the control plane.

package cluster

import (
	"math/rand"

	"repro/internal/simtime"
	"repro/internal/trace"
)

// NetFaultConfig tunes per-message network fault injection.
type NetFaultConfig struct {
	// Loss is the per-message probability that the payload silently
	// vanishes in flight. The sender is never told (that is the point:
	// a lost heartbeat and a dead peer look identical to a detector).
	Loss float64
	// Duplicate is the per-message probability that a second copy is
	// delivered, with its own independently drawn delay.
	Duplicate float64
	// DelayJitter adds a uniform extra delay in [0, DelayJitter] to every
	// message on top of the modeled transfer time. Late heartbeats are
	// what separate a good detector from a trigger-happy one.
	DelayJitter simtime.Duration
}

// NetPolicy applies a NetFaultConfig plus named network partitions to
// every cross-node message. A nil *NetPolicy injects nothing.
type NetPolicy struct {
	cfg NetFaultConfig
	rng *rand.Rand
	ctr *trace.Counters

	// partitions maps a partition name to the node set on one side of
	// the cut; traffic crossing any active cut is dropped.
	partitions map[string]map[int]bool
}

// EnableNetFaults installs a network fault policy, seeded from the
// cluster RNG for deterministic replay. Counters land in c.Counters
// under net.*.
func (c *Cluster) EnableNetFaults(cfg NetFaultConfig) *NetPolicy {
	np := &NetPolicy{
		cfg:        cfg,
		rng:        rand.New(rand.NewSource(c.rng.Int63())),
		ctr:        c.Counters,
		partitions: make(map[string]map[int]bool),
	}
	c.net = np
	return np
}

// Net returns the installed network fault policy (nil when faults are
// disabled).
func (c *Cluster) Net() *NetPolicy { return c.net }

// Partition opens (or redefines) a named network partition: the nodes in
// side are cut off from every node not in side. Multiple partitions can
// be active at once; a message is dropped if any active cut separates
// its endpoints. Node-local (loopback) traffic is never affected.
func (np *NetPolicy) Partition(name string, side ...int) {
	s := make(map[int]bool, len(side))
	for _, n := range side {
		s[n] = true
	}
	np.partitions[name] = s
}

// Heal closes a named partition.
func (np *NetPolicy) Heal(name string) { delete(np.partitions, name) }

// Partitioned reports whether traffic between a and b currently crosses
// an active cut.
func (np *NetPolicy) Partitioned(a, b int) bool {
	if np == nil || a == b {
		return false
	}
	for _, side := range np.partitions {
		if side[a] != side[b] {
			return true
		}
	}
	return false
}

// outcome decides the fate of one message from→to. It returns whether
// the message is delivered at all, the extra delay beyond the transfer
// time, and whether a duplicate copy (with its own delay) follows.
func (np *NetPolicy) outcome(from, to int) (deliver bool, extra simtime.Duration, dup bool) {
	if np == nil {
		return true, 0, false
	}
	if from == to {
		// Loopback: never crosses the wire.
		return true, 0, false
	}
	if np.Partitioned(from, to) {
		np.ctr.Inc("net.partitioned", 1)
		return false, 0, false
	}
	if np.cfg.Loss > 0 && np.rng.Float64() < np.cfg.Loss {
		np.ctr.Inc("net.lost", 1)
		return false, 0, false
	}
	if np.cfg.DelayJitter > 0 {
		extra = simtime.Duration(np.rng.Int63n(int64(np.cfg.DelayJitter) + 1))
		if extra > 0 {
			np.ctr.Inc("net.delayed", 1)
		}
	}
	if np.cfg.Duplicate > 0 && np.rng.Float64() < np.cfg.Duplicate {
		np.ctr.Inc("net.dup", 1)
		dup = true
	}
	return true, extra, dup
}

// jitter draws one extra delay for a duplicate copy.
func (np *NetPolicy) jitter() simtime.Duration {
	if np == nil || np.cfg.DelayJitter <= 0 {
		return 0
	}
	return simtime.Duration(np.rng.Int63n(int64(np.cfg.DelayJitter) + 1))
}
