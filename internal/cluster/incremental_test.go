package cluster

import (
	"strings"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/detector"
	"repro/internal/mechanism"
	"repro/internal/policy"
	"repro/internal/simtime"
	"repro/internal/storage"
	"repro/internal/syslevel"
	"repro/internal/workload"
)

// The tentpole end to end: with incremental shipping on, the autonomic
// supervisor survives a real node failure, restores by chain replay, and
// its garbage collection retires exactly the objects no recovery pointer
// can reach — the live chain stays intact on the server.
func TestAutonomicIncrementalFailoverAndGC(t *testing.T) {
	prog := workload.Sparse{MiB: 1, WriteFrac: 0.2, Seed: 31}
	want := referenceFingerprint(t, prog, 60)

	c := newCluster(t, 4, prog)
	mon := detector.NewMonitor(c, detector.NewTimeout(2*simtime.Millisecond),
		detector.Config{Period: 200 * simtime.Microsecond, Observer: 3}, c.Counters)

	// Kill the job's node mid-chain; with Interval 1.5ms and RebaseEvery 3
	// the first incarnation has rebased at least once by then, so both the
	// delta path and the GC path run before recovery does.
	failed := false
	c.OnStep(func() {
		if !failed && c.Now() >= simtime.Time(6*simtime.Millisecond) {
			failed = true
			c.Fail(0)
		}
	})

	sup := MustNewSupervisor(SupervisorConfig{
		C:           c,
		MkMech:      func() mechanism.Mechanism { return syslevel.NewCRAK() },
		Prog:        prog,
		Iterations:  60,
		Policy:      policy.Fixed(1500 * simtime.Microsecond),
		Detector:    mon,
		ControlNode: 3,
		Incremental: true,
		RebaseEvery: 3,
	})
	if err := sup.Run(2 * simtime.Second); err != nil {
		t.Fatal(err)
	}
	if !sup.Completed {
		t.Fatalf("job did not complete (ckpts=%d restarts=%d counters:\n%s)",
			sup.Checkpoints, sup.Restarts, c.Counters)
	}
	if sup.Fingerprint != want {
		t.Fatalf("fingerprint %#x want %#x", sup.Fingerprint, want)
	}
	if sup.Restarts == 0 {
		t.Fatal("the node failure caused no failover")
	}
	if n := c.Counters.Get("ckpt.delta_acks"); n == 0 {
		t.Fatal("incremental mode shipped no deltas")
	}
	if n := c.Counters.Get("ckpt.full_acks"); n < 2 {
		t.Fatalf("ckpt.full_acks = %d, want ≥2 (initial full + at least one rebase)", n)
	}
	if n := c.Counters.Get("ckpt.retired"); n == 0 {
		t.Fatal("no superseded checkpoint was garbage-collected across a rebase")
	}
	for _, k := range []string{"ckpt.torn", "ckpt.lost", "ckpt.chain_fallback", "fence.double_commits"} {
		if n := c.Counters.Get(k); n != 0 {
			t.Fatalf("%s = %d, want 0", k, n)
		}
	}

	// Every retired object is really gone, and the live chain is really
	// there: replayable from the recovery pointer down to a full image.
	rem := c.Node(3).Remote()
	for _, ev := range sup.Events {
		if ev.Kind != EvRetire {
			continue
		}
		if _, err := rem.ObjectSize(ev.Object); err == nil {
			t.Fatalf("retired object %s still on the server", ev.Object)
		}
	}
	chain, err := checkpoint.LoadChain(rem, nil, sup.LastLeaf())
	if err != nil {
		t.Fatalf("live chain from %s is not replayable: %v", sup.LastLeaf(), err)
	}
	if chain[0].Mode != checkpoint.ModeFull {
		t.Fatalf("chain root mode = %v, want full", chain[0].Mode)
	}
	if !strings.HasPrefix(sup.LastLeaf(), "ckpt/e") {
		t.Fatalf("leaf %q not under an epoch namespace", sup.LastLeaf())
	}
}

// Satellite 1 regression: repeated failovers must not accumulate dead
// agents. Each rebooted incarnation's agent is reaped and compacted, so
// the supervisor never scans more than the current agent plus at most
// one not-yet-reaped predecessor.
func TestAgentCompactionAcrossRepeatedFailovers(t *testing.T) {
	prog := workload.Sparse{MiB: 1, WriteFrac: 0.2, Seed: 31}
	want := referenceFingerprint(t, prog, 60)

	c := newCluster(t, 4, prog)
	mon := detector.NewMonitor(c, detector.NewTimeout(2*simtime.Millisecond),
		detector.Config{Period: 200 * simtime.Microsecond, Observer: 3}, c.Counters)

	sup := MustNewSupervisor(SupervisorConfig{
		C:           c,
		MkMech:      func() mechanism.Mechanism { return syslevel.NewCRAK() },
		Prog:        prog,
		Iterations:  60,
		Policy:      policy.Fixed(2 * simtime.Millisecond),
		Detector:    mon,
		ControlNode: 3,
		Incremental: true,
		RebaseEvery: 2,
	})

	// Kill whichever node the job is on every 6ms (three times), rebooting
	// it 2ms later so its orphaned agent gets reaped and spares never run
	// out. Track the worst-case live-agent count the whole way.
	jobNode := 0
	sup.OnEvent = func(ev Event) {
		if ev.Kind == EvAdmit {
			jobNode = ev.Node
		}
	}
	fails := 0
	var nextFail, rebootAt simtime.Time
	nextFail = simtime.Time(6 * simtime.Millisecond)
	rebootNode := -1
	maxLive := 0
	c.OnStep(func() {
		if n := sup.LiveAgents(); n > maxLive {
			maxLive = n
		}
		if rebootNode >= 0 && c.Now() >= rebootAt {
			c.Reboot(rebootNode)
			rebootNode = -1
		}
		if fails < 3 && c.Now() >= nextFail && c.NodeAlive(jobNode) {
			fails++
			c.Fail(jobNode)
			rebootNode = jobNode
			rebootAt = c.Now().Add(2 * simtime.Millisecond)
			nextFail = c.Now().Add(6 * simtime.Millisecond)
		}
	})

	if err := sup.Run(2 * simtime.Second); err != nil {
		t.Fatal(err)
	}
	if !sup.Completed {
		t.Fatalf("job did not complete (ckpts=%d restarts=%d counters:\n%s)",
			sup.Checkpoints, sup.Restarts, c.Counters)
	}
	if sup.Fingerprint != want {
		t.Fatalf("fingerprint %#x want %#x", sup.Fingerprint, want)
	}
	if sup.Restarts < 3 {
		t.Fatalf("only %d failovers happened; the scenario needs repeated incarnations", sup.Restarts)
	}
	// One live incarnation plus at most one dead-node agent awaiting its
	// reboot to be reaped. Without pumpAgents' compaction this grows by
	// one per incarnation and the assertion fails at the third failover.
	if maxLive > 2 {
		t.Fatalf("agent list reached %d entries across %d restarts — stopped agents leak",
			maxLive, sup.Restarts)
	}
}

// Satellite 2 regression: the interval policy is consulted at every
// pump, so an MTBF estimate that collapses AFTER an agent is armed still
// shortens that same agent's very next checkpoint gap. An arm-time
// snapshot of the interval would keep the stale gap forever.
func TestAdaptiveIntervalShrinksMidIncarnation(t *testing.T) {
	prog := workload.Sparse{MiB: 1, WriteFrac: 0.2, Seed: 33}
	c := newCluster(t, 2, prog)
	p, err := c.Node(0).K.Spawn(prog.Name())
	if err != nil {
		t.Fatal(err)
	}
	workload.SetIterations(p, 1_000_000) // must outlive the test window

	est := NewMTBFEstimator(20 * simtime.Millisecond)
	sup := MustNewSupervisor(SupervisorConfig{
		C:          c,
		MkMech:     func() mechanism.Mechanism { return syslevel.NewCRAK() },
		Prog:       prog,
		Iterations: 1_000_000, // unused: agents are pumped directly, Run never starts
		Policy:     policy.Spec{Strategy: policy.StrategyAdaptive, Interval: 5 * simtime.Millisecond},
		Estimator:  est,
		Counters:   c.Counters,
		Fence:      storage.NewFenceDomain("job", c.Counters),
	})
	epoch := sup.Fence.Advance()
	sup.armAgent(0, p.PID, epoch)
	c.OnStep(sup.pumpAgents)
	a := sup.agents[0]

	if !c.RunUntil(func() bool { return sup.Checkpoints >= 1 }, simtime.Second) {
		t.Fatal("first checkpoint never happened")
	}
	// The pump that just fired re-armed nextAt from the healthy estimate.
	gapHealthy := a.nextAt.Sub(c.Now())
	if gapHealthy <= 0 {
		t.Fatalf("gap after first pump = %v", gapHealthy)
	}

	// The world turns hostile: ten failures over one observed millisecond
	// collapse the MTBF estimate from the 20ms prior to 100µs.
	est.ObserveUptime(simtime.Millisecond)
	for i := 0; i < 10; i++ {
		est.ObserveFailure()
	}
	if !c.RunUntil(func() bool { return sup.Checkpoints >= 2 }, simtime.Second) {
		t.Fatal("second checkpoint never happened")
	}
	gapHostile := a.nextAt.Sub(c.Now())
	if gapHostile <= 0 {
		t.Fatalf("gap after second pump = %v", gapHostile)
	}
	if gapHostile >= gapHealthy/2 {
		t.Fatalf("checkpoint gap barely moved (%v → %v) after the MTBF collapsed: "+
			"the agent is using an arm-time interval snapshot", gapHealthy, gapHostile)
	}
}

// Satellite 3: a mid-chain delta vanishes from the server (a lost write,
// or an ancestor wrongly GCed) and the node fails. Recovery must notice
// the break, count it, and fall back to the last full image — losing the
// deltas after it, not the job, and never restoring wrong-digest state.
func TestTornChainFallsBackToLastFull(t *testing.T) {
	prog := workload.Sparse{MiB: 1, WriteFrac: 0.2, Seed: 31}
	want := referenceFingerprint(t, prog, 60)

	c := newCluster(t, 4, prog)
	mon := detector.NewMonitor(c, detector.NewTimeout(2*simtime.Millisecond),
		detector.Config{Period: 200 * simtime.Microsecond, Observer: 3}, c.Counters)

	sup := MustNewSupervisor(SupervisorConfig{
		C:           c,
		MkMech:      func() mechanism.Mechanism { return syslevel.NewCRAK() },
		Prog:        prog,
		Iterations:  60,
		Policy:      policy.Fixed(simtime.Millisecond),
		Detector:    mon,
		ControlNode: 3,
		Incremental: true,
		RebaseEvery: 100, // one full, then deltas only: no rebase resets the chain
	})

	// Watch the acks: once the first incarnation has full + two deltas,
	// delete the FIRST delta out from under the chain and kill the node.
	var fullObj, victim string
	deltas := 0
	jobNode := 0
	armed, struck := false, false
	sup.OnEvent = func(ev Event) {
		if ev.Kind == EvAdmit {
			jobNode = ev.Node
		}
		if struck || ev.Kind != EvAck {
			return
		}
		if fullObj == "" {
			fullObj = ev.Object
			return
		}
		deltas++
		if victim == "" {
			victim = ev.Object
		}
		if deltas >= 2 {
			armed = true
		}
	}
	rem := c.Node(3).Remote()
	c.OnStep(func() {
		if armed && !struck {
			struck = true
			if err := rem.Delete(victim); err != nil {
				t.Errorf("deleting %s: %v", victim, err)
			}
			c.Fail(jobNode)
		}
	})

	if err := sup.Run(2 * simtime.Second); err != nil {
		t.Fatal(err)
	}
	if !struck {
		t.Fatal("the chain never grew two deltas — scenario did not run")
	}
	if !sup.Completed {
		t.Fatalf("job did not complete (ckpts=%d restarts=%d counters:\n%s)",
			sup.Checkpoints, sup.Restarts, c.Counters)
	}
	if sup.Fingerprint != want {
		t.Fatalf("fingerprint %#x want %#x: fallback restored wrong state", sup.Fingerprint, want)
	}
	if n := c.Counters.Get("ckpt.lost"); n != 1 {
		t.Fatalf("ckpt.lost = %d, want 1 (the deleted mid-chain delta)", n)
	}
	if n := c.Counters.Get("ckpt.chain_fallback"); n != 1 {
		t.Fatalf("ckpt.chain_fallback = %d, want 1", n)
	}
	if sup.FromScratch != 0 {
		t.Fatalf("recovery went from scratch %d times; the full image was intact", sup.FromScratch)
	}
	// The fallback restore really came from the surviving full image.
	restored := false
	for _, ev := range sup.Events {
		if ev.Kind == EvRestore && ev.Object == fullObj {
			restored = true
		}
	}
	if !restored {
		t.Fatalf("no restore from the last full %s (events:\n%s)", fullObj, FormatEvents(sup.Events))
	}
}
