// Package cluster provides the fault-tolerance substrate of §1: a
// simulated cluster of machines with fail-stop failures [33], node-local
// and remote stable storage, checkpoint-interval policy (Young/Daly), an
// autonomic manager that adapts the interval to the observed failure rate,
// process migration, gang scheduling via safe preemption, and both a
// detailed mode (full simulated kernels per node) and an analytic mode for
// long-MTBF parameter sweeps.
package cluster

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/costmodel"
	"repro/internal/simos/kernel"
	"repro/internal/simos/proc"
	"repro/internal/simtime"
	"repro/internal/storage"
	"repro/internal/trace"
)

// Node is one machine: a kernel plus its local disk. The disk's contents
// survive reboots (the power-outage case the paper concedes to local
// storage) but are unreachable while the node is down and after the node
// is replaced.
type Node struct {
	Name string
	K    *kernel.Kernel
	Disk *storage.Local
	RAM  *storage.Memory

	alive    bool
	failures int
	lastKind FailureKind // kind of the most recent failure
	cl       *Cluster
	idx      int
}

// Alive reports whether the node is up.
func (n *Node) Alive() bool { return n.alive }

// Failures returns how many times the node has failed.
func (n *Node) Failures() int { return n.failures }

// Remote returns a client for the cluster's checkpoint server.
func (n *Node) Remote() *storage.Remote {
	return storage.NewRemote(n.Name+"→"+"server", n.cl.Server)
}

// message is one in-flight cross-node payload.
type message struct {
	to      int
	payload any
	at      simtime.Time
}

// Cluster is a set of nodes co-simulated under a barrier-synchronized
// clock, plus a shared remote checkpoint server.
type Cluster struct {
	CM       *costmodel.Model
	Registry *kernel.Registry
	Server   *storage.Server
	// Counters accumulates cluster-wide counters (net.*, and — shared by
	// default with the orchestration layer — ckpt.*, det.*, fence.*).
	Counters *trace.Counters

	nodes   []*Node
	now     simtime.Time
	quantum simtime.Duration
	rng     *rand.Rand

	mail     []message
	handlers []func(payload any)

	injector  *Injector
	net       *NetPolicy
	stepHooks []func()
	downHooks []func(node int)
	upHooks   []func(node int)

	faults       *storage.FaultPolicy
	serverRepair simtime.Duration
	serverBackAt simtime.Time
}

// Config tunes a cluster.
type Config struct {
	Nodes   int
	Quantum simtime.Duration // barrier step (default 100µs)
	Seed    int64
	// KernelCfg is applied per node (hostname is overridden).
	KernelCfg kernel.Config
}

// New builds a cluster whose nodes all know the programs in reg.
func New(cfg Config, cm *costmodel.Model, reg *kernel.Registry) *Cluster {
	if cfg.Quantum <= 0 {
		cfg.Quantum = 100 * simtime.Microsecond
	}
	c := &Cluster{
		CM:       cm,
		Registry: reg,
		Server:   storage.NewServer("ckpt-server", cm),
		Counters: trace.NewCounters(),
		quantum:  cfg.Quantum,
		rng:      rand.New(rand.NewSource(cfg.Seed + 1)),
	}
	for i := 0; i < cfg.Nodes; i++ {
		c.addNode(cfg, i)
	}
	return c
}

func (c *Cluster) addNode(cfg Config, i int) {
	name := fmt.Sprintf("node%d", i)
	n := &Node{Name: name, alive: true, cl: c, idx: i}
	n.Disk = storage.NewLocal(name+"-disk", c.CM, n.Alive)
	n.RAM = storage.NewMemory(name+"-ram", n.Alive)
	kc := cfg.KernelCfg
	kc.Hostname = name
	kc.Seed = cfg.Seed + int64(i)*7919
	n.K = kernel.New(kc, c.CM, c.Registry)
	c.nodes = append(c.nodes, n)
	c.handlers = append(c.handlers, nil)
}

// Nodes returns the node list.
func (c *Cluster) Nodes() []*Node { return c.nodes }

// Node returns node i.
func (c *Cluster) Node(i int) *Node { return c.nodes[i] }

// Now returns the cluster barrier time.
func (c *Cluster) Now() simtime.Time { return c.now }

// Rand returns the cluster's deterministic RNG.
func (c *Cluster) Rand() *rand.Rand { return c.rng }

// SetInjector installs a failure injector.
func (c *Cluster) SetInjector(inj *Injector) { c.injector = inj }

// StorageFaultConfig tunes per-operation storage fault injection for a
// cluster (see storage.FaultPolicy for the field semantics).
type StorageFaultConfig struct {
	WriteFault   float64
	OutageFrac   float64
	SilentTear   float64
	PublishFault float64
	// ServerRepair is how long a mid-transfer server outage lasts before
	// the cluster brings the server back (default 5ms of simulated time).
	ServerRepair simtime.Duration
}

// EnableStorageFaults installs one fault policy, seeded from the cluster
// RNG for determinism, on the checkpoint server and every node's local
// disk. Server outages injected mid-transfer heal automatically after
// cfg.ServerRepair of cluster time. The returned policy exposes the
// injection counts.
func (c *Cluster) EnableStorageFaults(cfg StorageFaultConfig) *storage.FaultPolicy {
	if cfg.ServerRepair <= 0 {
		cfg.ServerRepair = 5 * simtime.Millisecond
	}
	fp := &storage.FaultPolicy{
		WriteFault:   cfg.WriteFault,
		OutageFrac:   cfg.OutageFrac,
		SilentTear:   cfg.SilentTear,
		PublishFault: cfg.PublishFault,
		Rng:          rand.New(rand.NewSource(c.rng.Int63())),
	}
	c.serverRepair = cfg.ServerRepair
	fp.OnOutage = func() { c.serverBackAt = c.now.Add(c.serverRepair) }
	c.Server.SetFaults(fp)
	for _, n := range c.nodes {
		n.Disk.SetFaults(fp)
	}
	c.faults = fp
	return fp
}

// OnDeliver registers the cross-node message handler for node i
// (package mpi installs its mailbox here). It replaces any previous
// handler; use Handler first to chain.
func (c *Cluster) OnDeliver(i int, fn func(payload any)) { c.handlers[i] = fn }

// Handler returns node i's registered deliver handler (nil when none),
// so a new handler can filter its own payloads and forward the rest.
func (c *Cluster) Handler(i int) func(payload any) { return c.handlers[i] }

// OnStep registers a hook run at the end of every cluster Step, after
// mail delivery and failure injection. Node-local daemons (heartbeat
// emitters, checkpoint agents) pump from here.
func (c *Cluster) OnStep(fn func()) { c.stepHooks = append(c.stepHooks, fn) }

// OnNodeDown registers a hook invoked whenever a node fails. Detector
// bookkeeping uses it as ground truth for latency and false-positive
// accounting; decision paths must not.
func (c *Cluster) OnNodeDown(fn func(node int)) { c.downHooks = append(c.downHooks, fn) }

// OnNodeUp registers a hook invoked whenever a node reboots.
func (c *Cluster) OnNodeUp(fn func(node int)) { c.upHooks = append(c.upHooks, fn) }

// NumNodes returns the node count.
func (c *Cluster) NumNodes() int { return len(c.nodes) }

// NodeAlive reports node i's liveness (detector.Transport).
func (c *Cluster) NodeAlive(i int) bool { return c.nodes[i].alive }

// DropMail discards queued in-flight messages matching the predicate —
// the network teardown a parallel job performs before restarting from a
// checkpoint (stale packets from the failed execution must not reach the
// restored one).
func (c *Cluster) DropMail(match func(payload any) bool) int {
	var rest []message
	dropped := 0
	for _, m := range c.mail {
		if match(m.payload) {
			dropped++
			continue
		}
		rest = append(rest, m)
	}
	c.mail = rest
	return dropped
}

// ErrNodeDown reports that a Send's destination was already down when
// the message left the source: the message was never sent, as opposed to
// sent and lost in flight (which Send deliberately does not report —
// the network gives no receipt).
var ErrNodeDown = errors.New("cluster: destination node is down")

// Send queues a payload of the given size from node `from` to node `to`;
// it is delivered at the first barrier after the modeled transfer time
// (plus injected jitter). A destination known to be down at send time
// returns ErrNodeDown; a message lost, partitioned away, or addressed to
// a handler-less node is counted (net.*) but reported to nobody.
func (c *Cluster) Send(from, to int, payload any, size int) error {
	if !c.nodes[from].alive {
		return fmt.Errorf("cluster: %s is down", c.nodes[from].Name)
	}
	c.Counters.Inc("net.sent", 1)
	if !c.nodes[to].alive {
		c.Counters.Inc("net.dropped", 1)
		return fmt.Errorf("%w: %s", ErrNodeDown, c.nodes[to].Name)
	}
	deliver, extra, dup := c.net.outcome(from, to)
	if !deliver {
		return nil
	}
	at := c.now.Add(c.CM.NetTransfer(size) + extra)
	c.mail = append(c.mail, message{to: to, payload: payload, at: at})
	if dup {
		c.mail = append(c.mail, message{to: to, payload: payload,
			at: c.now.Add(c.CM.NetTransfer(size) + c.net.jitter())})
	}
	return nil
}

// Step advances the cluster by one quantum: each live node's kernel runs
// to the barrier, then due messages deliver and due failures fire.
func (c *Cluster) Step() {
	c.now = c.now.Add(c.quantum)
	for _, n := range c.nodes {
		if n.alive && n.K.Now() < c.now {
			n.K.RunFor(c.now.Sub(n.K.Now()))
		}
	}
	// Deliver due mail (to live nodes; mail to dead or handler-less
	// nodes is dropped and counted, fail-stop semantics).
	var rest []message
	for _, m := range c.mail {
		switch {
		case m.at > c.now:
			rest = append(rest, m)
		case c.nodes[m.to].alive && c.handlers[m.to] != nil:
			c.Counters.Inc("net.delivered", 1)
			c.handlers[m.to](m.payload)
		default:
			c.Counters.Inc("net.dropped", 1)
		}
	}
	c.mail = rest
	if c.injector != nil {
		c.injector.apply(c)
	}
	if c.serverBackAt != 0 && c.now >= c.serverBackAt {
		c.Server.Recover()
		c.serverBackAt = 0
	}
	for _, fn := range c.stepHooks {
		fn()
	}
}

// RunFor advances the cluster by d.
func (c *Cluster) RunFor(d simtime.Duration) {
	deadline := c.now.Add(d)
	for c.now < deadline {
		c.Step()
	}
}

// RunUntil advances the cluster until cond returns true or the budget
// elapses; reports whether cond was met.
func (c *Cluster) RunUntil(cond func() bool, budget simtime.Duration) bool {
	deadline := c.now.Add(budget)
	for c.now < deadline {
		if cond() {
			return true
		}
		c.Step()
	}
	return cond()
}

// Fail takes node i down with Transient semantics (fail-stop: it halts
// instantly and all its processes die). Its local disk becomes
// unreachable but keeps its contents for a later Reboot.
func (c *Cluster) Fail(i int) { c.FailKind(i, Transient) }

// FailKind takes node i down recording the §4.1 distinction: a Transient
// failure (power outage) reboots the same machine, disk intact; a
// Permanent one is a machine replacement, so the node that later comes
// back does so with a blank local disk.
func (c *Cluster) FailKind(i int, kind FailureKind) {
	n := c.nodes[i]
	if !n.alive {
		return
	}
	n.alive = false
	n.failures++
	n.lastKind = kind
	n.K.SetHalted(true)
	for _, p := range n.K.Procs.All() {
		if p.State != proc.StateZombie && p.State != proc.StateDead {
			n.K.Exit(p, 137)
		}
	}
	for _, fn := range c.downHooks {
		fn(i)
	}
}

// Reboot brings node i back with a fresh kernel (empty process table).
// After a Transient failure the local disk's contents are intact; after
// a Permanent one the replacement machine's disk starts empty. RAM
// contents are lost either way.
func (c *Cluster) Reboot(i int) {
	n := c.nodes[i]
	if n.alive {
		return
	}
	kc := kernel.DefaultConfig(n.Name)
	kc.Seed = int64(i)*7919 + int64(n.failures)
	k := kernel.New(kc, c.CM, c.Registry)
	// The new kernel's clock starts at the cluster barrier.
	k.Eng.Clock.AdvanceTo(c.now)
	n.K = k
	n.RAM.Drop()
	if n.lastKind == Permanent {
		n.Disk.Wipe()
	}
	n.alive = true
	for _, fn := range c.upHooks {
		fn(i)
	}
}

// Reachable reports whether a message from node `from` would currently
// reach node `to`: the destination must be up and no active partition
// may separate the two. This is the network model's answer, used to
// decide the fate of modeled RPCs.
func (c *Cluster) Reachable(from, to int) bool {
	return c.nodes[to].alive && !c.net.Partitioned(from, to)
}

// ProcStatus is the reply of a successful status RPC.
type ProcStatus struct {
	State       proc.State
	ExitCode    int
	Fingerprint uint64
	Found       bool // false: the node answered but has no such process
}

// ProbeProcess models a status RPC from node `from` to the job runner on
// node `on`: when the network would swallow the request (dead peer or
// active partition) it returns ok=false and the caller learns nothing —
// a dead node and a slow link are indistinguishable, which is exactly
// why callers must leave the dead/alive verdict to a failure detector
// rather than to this probe.
func (c *Cluster) ProbeProcess(from, on int, pid proc.PID) (st ProcStatus, ok bool) {
	if !c.Reachable(from, on) {
		return ProcStatus{}, false
	}
	p, err := c.nodes[on].K.Procs.Lookup(pid)
	if err != nil {
		return ProcStatus{Found: false}, true
	}
	return ProcStatus{State: p.State, ExitCode: p.ExitCode, Fingerprint: p.Regs().G[3], Found: true}, true
}

// FindSpare returns the first live node other than `except`, or -1.
func (c *Cluster) FindSpare(except int) int {
	for i, n := range c.nodes {
		if i != except && n.alive {
			return i
		}
	}
	return -1
}
