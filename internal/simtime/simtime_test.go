package simtime

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestClockAdvance(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Fatalf("zero clock at %v, want 0", c.Now())
	}
	c.Advance(5 * Millisecond)
	if got := c.Now(); got != Time(5*Millisecond) {
		t.Fatalf("Now = %v, want 5ms", got)
	}
	c.AdvanceTo(Time(Second))
	if got := c.Now(); got != Time(Second) {
		t.Fatalf("Now = %v, want 1s", got)
	}
}

func TestClockNegativeAdvancePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative Advance did not panic")
		}
	}()
	var c Clock
	c.Advance(-1)
}

func TestClockAdvanceToPastPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AdvanceTo into the past did not panic")
		}
	}()
	var c Clock
	c.Advance(Second)
	c.AdvanceTo(0)
}

func TestDurationString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{0, "0ns"},
		{500, "500ns"},
		{2 * Microsecond, "2.000µs"},
		{3 * Millisecond, "3.000ms"},
		{2 * Second, "2.000s"},
		{90 * Minute, "1.50h"},
		{-2 * Second, "-2.000s"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.d), got, c.want)
		}
	}
}

func TestQueueOrdering(t *testing.T) {
	var e Engine
	var got []int
	e.At(30, func() { got = append(got, 3) })
	e.At(10, func() { got = append(got, 1) })
	e.At(20, func() { got = append(got, 2) })
	e.Drain(0)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("event order = %v, want [1 2 3]", got)
	}
	if e.Now() != 30 {
		t.Fatalf("clock after drain = %v, want 30", e.Now())
	}
}

func TestQueueStableAtSameInstant(t *testing.T) {
	var e Engine
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(100, func() { got = append(got, i) })
	}
	e.Drain(0)
	for i, v := range got {
		if v != i {
			t.Fatalf("same-instant events ran out of order: %v", got)
		}
	}
}

func TestEventCancel(t *testing.T) {
	var e Engine
	ran := false
	ev := e.At(10, func() { ran = true })
	ev.Cancel()
	e.At(20, func() {})
	e.Drain(0)
	if ran {
		t.Fatal("cancelled event ran")
	}
	if e.Now() != 20 {
		t.Fatalf("clock = %v, want 20", e.Now())
	}
}

func TestRunUntil(t *testing.T) {
	var e Engine
	var got []Time
	for _, at := range []Time{5, 15, 25} {
		at := at
		e.At(at, func() { got = append(got, at) })
	}
	e.RunUntil(20)
	if len(got) != 2 {
		t.Fatalf("ran %d events, want 2", len(got))
	}
	if e.Now() != 20 {
		t.Fatalf("clock = %v, want 20 (deadline)", e.Now())
	}
	e.RunUntil(100)
	if len(got) != 3 {
		t.Fatalf("ran %d events total, want 3", len(got))
	}
}

func TestDrainGuard(t *testing.T) {
	var e Engine
	var reschedule func()
	reschedule = func() { e.After(1, reschedule) }
	e.After(1, reschedule)
	n := e.Drain(50)
	if n != 50 {
		t.Fatalf("Drain ran %d events, want guard at 50", n)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("At() in the past did not panic")
		}
	}()
	var e Engine
	e.Clock.Advance(Second)
	e.At(5, func() {})
}

// Property: events always fire in nondecreasing time order, regardless of
// insertion order.
func TestQuickEventOrdering(t *testing.T) {
	f := func(offsets []uint16) bool {
		var e Engine
		var fired []Time
		for _, off := range offsets {
			at := Time(off)
			e.At(at, func() { fired = append(fired, at) })
		}
		e.Drain(0)
		if len(fired) != len(offsets) {
			return false
		}
		return sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: interleaved schedule/step sequences never observe the clock
// moving backwards.
func TestQuickClockMonotonic(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var e Engine
	last := Time(0)
	for i := 0; i < 2000; i++ {
		if rng.Intn(2) == 0 {
			e.After(Duration(rng.Intn(1000)), func() {})
		} else {
			e.Step()
		}
		if e.Now() < last {
			t.Fatalf("clock went backwards: %v < %v", e.Now(), last)
		}
		last = e.Now()
	}
}

func BenchmarkQueueScheduleAndPop(b *testing.B) {
	rng := rand.New(rand.NewSource(42))
	var e Engine
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Queue.Schedule(e.Now().Add(Duration(rng.Intn(1024))), func() {})
		if i%2 == 1 {
			e.Step()
		}
	}
}
