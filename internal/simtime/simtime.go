// Package simtime provides the simulated clock and deterministic
// discrete-event queue that underpin the whole simulation.
//
// All time in the simulator is expressed as simtime.Time, a count of
// simulated nanoseconds since simulation start. Nothing in the repository
// reads the wall clock; determinism is a design invariant (see DESIGN.md §4).
package simtime

import (
	"container/heap"
	"fmt"
)

// Time is a simulated instant, in nanoseconds since simulation start.
type Time int64

// Duration is a span of simulated time in nanoseconds.
type Duration int64

// Common durations, mirroring time package conventions.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
	Minute               = 60 * Second
	Hour                 = 60 * Minute
)

// Add returns t shifted by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds returns the duration as floating-point seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Millis returns the duration as floating-point milliseconds.
func (d Duration) Millis() float64 { return float64(d) / float64(Millisecond) }

// Micros returns the duration as floating-point microseconds.
func (d Duration) Micros() float64 { return float64(d) / float64(Microsecond) }

// String renders a duration with an adaptive unit.
func (d Duration) String() string {
	switch {
	case d < 0:
		return "-" + (-d).String()
	case d >= Hour:
		return fmt.Sprintf("%.2fh", float64(d)/float64(Hour))
	case d >= Second:
		return fmt.Sprintf("%.3fs", d.Seconds())
	case d >= Millisecond:
		return fmt.Sprintf("%.3fms", d.Millis())
	case d >= Microsecond:
		return fmt.Sprintf("%.3fµs", d.Micros())
	default:
		return fmt.Sprintf("%dns", int64(d))
	}
}

// String renders an instant as a duration since simulation start.
func (t Time) String() string { return Duration(t).String() }

// Clock is the simulated clock. The zero Clock starts at time 0.
type Clock struct {
	now Time
}

// Now returns the current simulated time.
func (c *Clock) Now() Time { return c.now }

// Advance moves the clock forward by d. Negative advances panic: simulated
// time is monotonic by construction and a negative advance is always a bug.
func (c *Clock) Advance(d Duration) {
	if d < 0 {
		panic(fmt.Sprintf("simtime: negative advance %d", d))
	}
	c.now += Time(d)
}

// AdvanceTo moves the clock to t, which must not be in the past.
func (c *Clock) AdvanceTo(t Time) {
	if t < c.now {
		panic(fmt.Sprintf("simtime: AdvanceTo into the past (%v < %v)", t, c.now))
	}
	c.now = t
}

// Event is a scheduled callback. Events at the same instant fire in the
// order they were scheduled (stable by sequence number), which keeps the
// simulation deterministic.
type Event struct {
	At   Time
	Fn   func()
	seq  uint64
	idx  int
	dead bool
}

// Cancel marks the event so that the queue will discard it instead of
// running it. Cancelling an already-fired event is a no-op.
func (e *Event) Cancel() { e.dead = true }

// Queue is a deterministic min-heap of events.
// The zero Queue is ready to use.
type Queue struct {
	h   eventHeap
	seq uint64
}

// Schedule enqueues fn to run at instant at and returns the event handle.
func (q *Queue) Schedule(at Time, fn func()) *Event {
	q.seq++
	e := &Event{At: at, Fn: fn, seq: q.seq}
	heap.Push(&q.h, e)
	return e
}

// Len reports the number of pending events (including cancelled ones that
// have not yet been discarded).
func (q *Queue) Len() int { return len(q.h) }

// Empty reports whether no live events remain.
func (q *Queue) Empty() bool {
	q.discardDead()
	return len(q.h) == 0
}

// NextAt returns the time of the earliest live event.
// The second result is false when the queue is empty.
func (q *Queue) NextAt() (Time, bool) {
	q.discardDead()
	if len(q.h) == 0 {
		return 0, false
	}
	return q.h[0].At, true
}

// Pop removes and returns the earliest live event, or nil if none remain.
func (q *Queue) Pop() *Event {
	q.discardDead()
	if len(q.h) == 0 {
		return nil
	}
	return heap.Pop(&q.h).(*Event)
}

func (q *Queue) discardDead() {
	for len(q.h) > 0 && q.h[0].dead {
		heap.Pop(&q.h)
	}
}

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx, h[j].idx = i, j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.idx = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Engine couples a clock with an event queue and runs events in order.
type Engine struct {
	Clock Clock
	Queue Queue
}

// Now returns the engine's current simulated time.
func (e *Engine) Now() Time { return e.Clock.Now() }

// After schedules fn to run d after now.
func (e *Engine) After(d Duration, fn func()) *Event {
	return e.Queue.Schedule(e.Clock.Now().Add(d), fn)
}

// At schedules fn to run at instant t (not before now).
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.Clock.Now() {
		panic("simtime: scheduling event in the past")
	}
	return e.Queue.Schedule(t, fn)
}

// Step runs the earliest pending event, advancing the clock to its instant.
// An event whose instant has already passed (time was advanced directly by
// cost accounting while it was pending) runs late, at the current time.
// It reports whether an event was run.
func (e *Engine) Step() bool {
	ev := e.Queue.Pop()
	if ev == nil {
		return false
	}
	if ev.At > e.Clock.Now() {
		e.Clock.AdvanceTo(ev.At)
	}
	ev.Fn()
	return true
}

// RunUntil runs events until the queue is empty or the next event is after
// deadline. The clock finishes at min(deadline, time of last event run).
func (e *Engine) RunUntil(deadline Time) {
	for {
		at, ok := e.Queue.NextAt()
		if !ok || at > deadline {
			if deadline > e.Clock.Now() {
				e.Clock.AdvanceTo(deadline)
			}
			return
		}
		e.Step()
	}
}

// Drain runs events until none remain. A maxEvents guard (0 = no limit)
// protects against runaway self-rescheduling loops in tests.
func (e *Engine) Drain(maxEvents int) int {
	n := 0
	for e.Step() {
		n++
		if maxEvents > 0 && n >= maxEvents {
			break
		}
	}
	return n
}
