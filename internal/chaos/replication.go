// Replication-aware auditing. On replicated seeds an acked checkpoint
// may legally live only on node-local disks (always, in erasure mode),
// so the audit cannot witness durability through the server alone: the
// auditReader here reads the union of every node's disk plus the server
// — simulator ground truth, which Finish-time checkers are allowed. Its
// masked variant deletes one placement slot from the union, which is how
// the repl-durability checker simulates "one more failure than the run
// actually had" and demands the acked chain still restore.

package chaos

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/checkpoint"
	"repro/internal/cluster"
	"repro/internal/storage"
	"repro/internal/storage/erasure"
)

// auditServer is the mask key for the shared checkpoint server, matching
// the -1 the supervisor's ReplicaPlacement uses for its server slot.
const auditServer = -1

// auditReader is a read-only storage.Target spanning every node-local
// disk in the cluster plus the checkpoint server. Mirror mode returns
// the first surviving copy; erasure mode gathers every parseable shard
// (wherever a placement change left it) and decodes. Nodes in masked —
// and the server, under the auditServer key — are invisible.
type auditReader struct {
	c       *cluster.Cluster
	erasure bool
	masked  map[int]bool
}

// newAuditReader builds the union reader; masked may be nil.
func newAuditReader(c *cluster.Cluster, erasureMode bool, masked map[int]bool) *auditReader {
	return &auditReader{c: c, erasure: erasureMode, masked: masked}
}

// Name implements storage.Target.
func (a *auditReader) Name() string { return "chaos-audit" }

// Kind implements storage.Target.
func (a *auditReader) Kind() storage.Kind { return storage.KindReplicated }

// Available implements storage.Target.
func (a *auditReader) Available() bool { return true }

// disks yields every unmasked, reachable node disk in node order — the
// fixed iteration every read uses, so audits are deterministic.
func (a *auditReader) disks(fn func(node int, d storage.Target) bool) {
	for i := 0; i < a.c.NumNodes(); i++ {
		if a.masked[i] {
			continue
		}
		d := a.c.Node(i).Disk
		if d == nil || !d.Available() {
			continue
		}
		if !fn(i, d) {
			return
		}
	}
}

// ReadObject implements storage.Target.
func (a *auditReader) ReadObject(object string, env *storage.Env) ([]byte, error) {
	if a.erasure {
		var blobs [][]byte
		a.disks(func(_ int, d storage.Target) bool {
			if data, err := d.ReadObject(object, env); err == nil {
				if _, perr := erasure.ParseShard(data); perr == nil {
					blobs = append(blobs, data)
				}
			}
			return true
		})
		// DecodeAny: shards stranded by an old placement or a partial
		// re-encode may join the gather; the best consistent group wins.
		data, err := erasure.DecodeAny(blobs)
		if err != nil {
			return nil, fmt.Errorf("%w: %s (%v)", storage.ErrNotFound, object, err)
		}
		return data, nil
	}
	var out []byte
	a.disks(func(_ int, d storage.Target) bool {
		if data, err := d.ReadObject(object, env); err == nil {
			out = data
			return false
		}
		return true
	})
	if out != nil {
		return out, nil
	}
	if !a.masked[auditServer] {
		return storage.NewRemote("chaos-audit", a.c.Server).ReadObject(object, env)
	}
	return nil, fmt.Errorf("%w: %s", storage.ErrNotFound, object)
}

// ObjectSize implements storage.Target.
func (a *auditReader) ObjectSize(object string) (int, error) {
	data, err := a.ReadObject(object, nil)
	if err != nil {
		return 0, err
	}
	return len(data), nil
}

// List implements storage.Target: the sorted union over every witness.
func (a *auditReader) List() []string {
	seen := make(map[string]bool)
	a.disks(func(_ int, d storage.Target) bool {
		for _, n := range d.List() {
			seen[n] = true
		}
		return true
	})
	if !a.masked[auditServer] {
		for _, n := range storage.NewRemote("chaos-audit", a.c.Server).List() {
			seen[n] = true
		}
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Create implements storage.Target; the audit never writes.
func (a *auditReader) Create(object string, env *storage.Env) (storage.Writer, error) {
	return nil, errors.New("chaos: audit reader is read-only")
}

// Publish implements storage.Target; the audit never writes.
func (a *auditReader) Publish(staging, final string, env *storage.Env) error {
	return errors.New("chaos: audit reader is read-only")
}

// Delete implements storage.Target; the audit never writes.
func (a *auditReader) Delete(object string) error {
	return errors.New("chaos: audit reader is read-only")
}

// --- acked chains survive one more failure than the run had ---

// replDurabilityChecker is the replicated form of acked durability: for
// each placement slot, mask that slot out of the union of surviving
// copies and demand the final acked chain still load — the owner slot's
// mask is the headline "restorable after owner-node loss", the others
// are "restorable after the loss of any single replica" (mirrors) and
// "any m shards" (erasure, one slot at a time).
//
// A mask is only exercised when every other placement holder is alive:
// the checker simulates one failure beyond ground truth, and a slot
// already dead at audit has consumed the redundancy budget the mask
// would spend. Runs where a repair write was itself fault-injected
// (repl.repair_failed) are skipped — un-replicated redundancy is then
// the injected fault's doing, not a placement bug.
type replDurabilityChecker struct {
	lastAck string
}

func (c *replDurabilityChecker) Name() string { return "repl-durability" }

func (c *replDurabilityChecker) Event(ev cluster.Event) {
	if ev.Kind == cluster.EvAck {
		c.lastAck = ev.Object
	}
}

func (c *replDurabilityChecker) Finish(a *Audit) []Violation {
	sp := a.Spec
	if sp.Replication == "" || sp.NoFencing || c.lastAck == "" || !a.Sup.Completed {
		return nil
	}
	if a.C.Counters.Get("repl.repair_failed") > 0 {
		return nil
	}
	placement := a.Sup.ReplicaPlacement()
	if len(placement) == 0 {
		return nil
	}
	var out []Violation
	for i, node := range placement {
		if !c.othersAlive(a, placement, i) {
			continue
		}
		reader := newAuditReader(a.C, sp.Replication == "erasure", map[int]bool{node: true})
		if _, err := checkpoint.LoadChain(reader, nil, c.lastAck); err != nil {
			who := fmt.Sprintf("replica slot %d (node %d)", i, node)
			if i == 0 {
				who = fmt.Sprintf("the owner node %d", node)
			}
			out = append(out, Violation{c.Name(), fmt.Sprintf(
				"acked chain from %s not restorable with %s lost: %v", c.lastAck, who, err)})
		}
	}
	return out
}

// othersAlive reports whether every placement holder except slot i is
// alive at audit (the server never dies; outages heal before the audit).
func (c *replDurabilityChecker) othersAlive(a *Audit, placement []int, i int) bool {
	for j, node := range placement {
		if j == i || node < 0 {
			continue
		}
		if !a.C.NodeAlive(node) {
			return false
		}
	}
	return true
}

// --- re-replication converges ---

// replConvergedChecker demands that by the end of a completed run every
// live-chain object is fully replicated again: present (and, for
// erasure, holding the slot's own shard) on every placement slot whose
// node is alive. Quorum acks are allowed to leave replicas behind and
// failures are allowed to destroy them — this checker is the proof that
// the background repair sweeps (and the completion-time flush) win that
// race before the run is cut. Slots whose holder is dead at audit are
// exempt (repair cannot write to a dead disk, and if no spare existed
// the slot legally kept its dead holder); runs where a repair write was
// fault-injected (repl.repair_failed) are skipped entirely.
type replConvergedChecker struct{}

func (replConvergedChecker) Name() string           { return "repl-converged" }
func (replConvergedChecker) Event(ev cluster.Event) {}

func (c replConvergedChecker) Finish(a *Audit) []Violation {
	sp := a.Spec
	if sp.Replication == "" || sp.NoFencing || !a.Sup.Completed {
		return nil
	}
	if a.C.Counters.Get("repl.repair_failed") > 0 {
		return nil
	}
	placement := a.Sup.ReplicaPlacement()
	if len(placement) == 0 {
		return nil
	}
	erasureMode := sp.Replication == "erasure"
	var out []Violation
	for _, obj := range a.Sup.ChainObjects() {
		for i, node := range placement {
			// The server slot is not audited here: a server outage open at
			// the cut legally swallows late copies, and the restore ladder's
			// use of the server is covered by repl-durability's masks.
			if node < 0 || !a.C.NodeAlive(node) {
				continue
			}
			data, err := a.C.Node(node).Disk.ReadObject(obj, nil)
			if err != nil {
				out = append(out, Violation{c.Name(), fmt.Sprintf(
					"%s missing from replica slot %d (node %d) after repair had the whole run to converge", obj, i, node)})
				continue
			}
			if !erasureMode {
				continue
			}
			s, perr := erasure.ParseShard(data)
			if perr != nil || s.Index != i {
				out = append(out, Violation{c.Name(), fmt.Sprintf(
					"%s on slot %d (node %d) is not that slot's shard (%v)", obj, i, node, perr)})
			}
		}
	}
	return out
}
