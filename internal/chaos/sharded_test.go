package chaos

import (
	"strings"
	"testing"

	"repro/internal/simtime"
)

// TestShardedGeneratedMix pins that the generator actually draws the
// sharded digest path across the tier-1 sweep width — the sweep
// exercises aggregator failover only if sharded seeds exist in it.
func TestShardedGeneratedMix(t *testing.T) {
	sharded := 0
	for seed := int64(1); seed <= sweepSeeds; seed++ {
		if Generate(seed).Shards >= 2 {
			sharded++
		}
	}
	if sharded == 0 {
		t.Fatalf("generator drew no sharded seeds in [1,%d]", sweepSeeds)
	}
	t.Logf("sharded seeds: %d of %d", sharded, sweepSeeds)
}

// TestShardedForcedSweep forces digest detection onto every generated
// scenario wide enough for it (each of the two shards keeps a failover
// candidate when its aggregator dies) and demands the full invariant
// catalog stay silent — the sharded path must survive the same storage
// faults, partitions, and node failures as the flat Monitor.
func TestShardedForcedSweep(t *testing.T) {
	ran := 0
	for seed := int64(1); seed <= 120; seed++ {
		sp := Generate(seed)
		if sp.workers() < 4 {
			continue
		}
		sp.Shards = 2
		ran++
		if r := Run(sp); len(r.Violations) > 0 {
			t.Errorf("seed %d: %s", seed, r.Summary())
			for _, v := range r.Violations {
				t.Errorf("  %s", v)
			}
			t.Errorf("  reproduce: %s", r.Spec.ReplayLine())
		}
	}
	if ran < 10 {
		t.Fatalf("only %d seeds in [1,120] were shard-eligible", ran)
	}
	t.Logf("sharded sweep covered %d seeds", ran)
}

// TestShardedRunDeterministic double-runs sharded scenarios and requires
// equal digests: digest emission, aggregator reassignment, and the
// suspicion log must all be schedule-stable.
func TestShardedRunDeterministic(t *testing.T) {
	checked := 0
	for seed := int64(1); seed <= 20 && checked < 4; seed++ {
		sp := Generate(seed)
		if sp.workers() < 4 {
			continue
		}
		sp.Shards = 2
		checked++
		if ok, a, b := Confirm(sp); !ok {
			t.Fatalf("sharded seed %d nondeterministic: %#x vs %#x", seed, a.Digest, b.Digest)
		}
	}
	if checked == 0 {
		t.Fatal("no shard-eligible seed in [1,20]")
	}
}

// TestShardedAggregatorDeath kills a shard aggregator under the digest
// path: the observer must probe the dark shard back to life, the job
// must still complete, and no invariant may fire.
func TestShardedAggregatorDeath(t *testing.T) {
	sp := &Spec{
		Seed: 7, Nodes: 7, MiB: 1, WriteFrac: 0.2, WorkSeed: 7, Iterations: 30,
		Cadence:  3 * simtime.Millisecond,
		Detector: "timeout-2ms", HBPeriod: 200 * simtime.Microsecond,
		// Node 3 aggregates shard 1 ({3,4,5}); node 0 runs the job in
		// shard 0 ({0,1,2}). Kill the shard-1 aggregator permanently: the
		// whole shard goes dark and only observer probing can reassign it.
		Failures: []FailEvent{{At: 8 * simtime.Millisecond, Node: 3, Permanent: true}},
		Quiesce:  25 * simtime.Millisecond,
		Budget:   25*simtime.Millisecond + genDrain,
		Shards:   2,
	}
	if err := sp.validate(); err != nil {
		t.Fatal(err)
	}
	r := Run(sp)
	if !r.Completed {
		t.Fatalf("job did not complete: %s", r.Summary())
	}
	for _, v := range r.Violations {
		t.Errorf("violation: %s", v)
	}
	if !strings.Contains(r.Counters, "det.digest_sent") {
		t.Fatalf("digest path never engaged:\n%s", r.Counters)
	}
	// Reassignment may come through either route: agg_failover when the
	// observer still sees an unsuspected candidate, agg_probe when the
	// dead aggregator darkened the whole shard first.
	if !strings.Contains(r.Counters, "det.agg_failover") && !strings.Contains(r.Counters, "det.agg_probe") {
		t.Fatalf("aggregator death never triggered reassignment:\n%s", r.Counters)
	}
}

// TestShardedSpecValidation rejects shard counts the executor cannot
// run, and the shrinker's node-drop candidate keeps a spec valid by
// clamping the shard count to the shrunken width.
func TestShardedSpecValidation(t *testing.T) {
	base := Generate(1)
	for name, shards := range map[string]int{"one": 1, "negative": -2, "too-wide": base.workers() + 1} {
		sp := base.Clone()
		sp.Shards = shards
		if sp.validate() == nil {
			t.Errorf("%s: validate accepted shards=%d with %d workers", name, shards, sp.workers())
		}
	}
	sp := base.Clone()
	sp.Nodes = 5
	sp.Failures, sp.Partitions = nil, nil
	sp.Shards = sp.workers() // 4 shards over 4 workers: valid but tight
	if err := sp.validate(); err != nil {
		t.Fatalf("full-width shards rejected: %v", err)
	}
	c := dropTopWorker(sp)
	if c == nil {
		t.Fatal("dropTopWorker refused an unreferenced worker")
	}
	if err := c.validate(); err != nil {
		t.Fatalf("dropTopWorker left an invalid spec: %v", err)
	}
	if c.Shards != c.workers() {
		t.Fatalf("dropTopWorker kept shards=%d over %d workers", c.Shards, c.workers())
	}
}
