package chaos

import (
	"math/rand"

	"repro/internal/simtime"
)

// Generation bounds. The generator is deliberately conservative where an
// unbounded draw would make a scenario unwinnable rather than merely
// hostile: the observer never fails, at most one worker dies permanently
// (and only when a third worker exists to fail over to), every partition
// heals, and all discrete faults land before the quiesce point so the
// bounded-fault liveness invariant is meaningful.
const (
	genMinNodes = 3
	genMaxNodes = 6
	genDrain    = 3 * simtime.Second // post-quiesce completion allowance
)

// Generate derives a complete scenario from one master seed. Equal seeds
// yield equal specs; all randomness is confined to this function.
func Generate(seed int64) *Spec {
	rng := rand.New(rand.NewSource(seed))
	sp := &Spec{
		Seed:       seed,
		Nodes:      genMinNodes + rng.Intn(genMaxNodes-genMinNodes+1),
		MiB:        1,
		WriteFrac:  0.1 + 0.3*rng.Float64(),
		WorkSeed:   int64(rng.Intn(1 << 16)),
		Iterations: 20 + uint64(rng.Intn(41)), // 20..60
		Cadence:    simtime.Duration(2+rng.Intn(4)) * simtime.Millisecond,
		Detector:   detectorNames[rng.Intn(len(detectorNames))],
		HBPeriod:   simtime.Duration(150+rng.Intn(151)) * simtime.Microsecond,
	}

	// Network faults: loss and duplication are per-message, jitter is the
	// uniform extra delay bound. Kept below the point where heartbeats
	// stop carrying information at all.
	if rng.Float64() < 0.7 {
		sp.Loss = 0.15 * rng.Float64()
	}
	if rng.Float64() < 0.3 {
		sp.Dup = 0.05 * rng.Float64()
	}
	if rng.Float64() < 0.7 {
		sp.Jitter = simtime.Duration(rng.Intn(300)) * simtime.Microsecond
	}

	// Storage faults: each knob independently present or absent.
	if rng.Float64() < 0.4 {
		sp.Storage.WriteFault = 0.15 * rng.Float64()
	}
	if rng.Float64() < 0.2 {
		sp.Storage.OutageFrac = 0.5 * rng.Float64()
	}
	if rng.Float64() < 0.3 {
		sp.Storage.SilentTear = 0.2 * rng.Float64()
	}
	if rng.Float64() < 0.3 {
		sp.Storage.PublishFault = 0.2 * rng.Float64()
	}

	// Discrete fault window: everything fires inside [2ms, quiesce).
	sp.Quiesce = simtime.Duration(20+rng.Intn(21)) * simtime.Millisecond
	window := int64(sp.Quiesce - 4*simtime.Millisecond)
	at := func() simtime.Duration {
		return 2*simtime.Millisecond + simtime.Duration(rng.Int63n(window))
	}

	// Node failures: up to 2 per scenario on workers. One may be
	// permanent when at least three workers exist (two must survive for
	// failover to have somewhere to go).
	workers := sp.workers()
	permBudget := 0
	if workers >= 3 {
		permBudget = 1
	}
	nFail := rng.Intn(3)
	for i := 0; i < nFail; i++ {
		ev := FailEvent{
			At:     at(),
			Node:   rng.Intn(workers),
			Repair: simtime.Duration(1+rng.Intn(5)) * simtime.Millisecond,
		}
		if permBudget > 0 && rng.Float64() < 0.25 {
			ev.Permanent = true
			ev.Repair = 0
			permBudget--
		}
		sp.Failures = append(sp.Failures, ev)
	}

	// Partitions: up to 2, each healing within the fault window. The
	// first is biased toward isolating node 0 — where the job starts —
	// because a control-plane cut of the running node is the split-brain
	// scenario fencing exists for.
	nPart := rng.Intn(3)
	for i := 0; i < nPart; i++ {
		start := at()
		p := PartitionEvent{
			At:   start,
			Heal: start + simtime.Duration(3+rng.Intn(10))*simtime.Millisecond,
		}
		if i == 0 && rng.Float64() < 0.8 {
			p.Side = []int{0}
		} else {
			p.Side = []int{rng.Intn(workers)}
		}
		if p.Heal > sp.Quiesce {
			p.Heal = sp.Quiesce
		}
		sp.Partitions = append(sp.Partitions, p)
	}

	sp.Budget = sp.Quiesce + genDrain

	// Delta chains on about half the seeds, with a short rebase period so
	// a sweep-sized run crosses several rebase/GC cycles. Drawn LAST:
	// every earlier field of a given seed is identical with and without
	// this block, so pre-chain reproducer lines stay meaningful.
	if rng.Float64() < 0.5 {
		sp.Incremental = true
		sp.RebaseEvery = 2 + rng.Intn(7) // 2..8
	}

	// Pipelined shipping on about half the seeds, over fixed worker
	// widths so a run never depends on the host's core count. Drawn after
	// the Incremental block for the same replay-stability reason.
	if rng.Float64() < 0.5 {
		sp.Pipeline = []int{1, 2, 4}[rng.Intn(3)]
	}

	// Server-side compaction on about half the incremental seeds, with a
	// low bound so sweep-sized runs fold several times. Drawn last, after
	// Pipeline, for the same replay-stability reason; the draw happens
	// only on Incremental seeds so non-chain replay lines are untouched.
	if sp.Incremental && rng.Float64() < 0.5 {
		sp.CompactAfter = 2 + rng.Intn(3) // 2..4
	}

	// Replicated checkpoint placement on about a third of the seeds:
	// buddy mirroring at any width, 2+1 erasure only where four workers
	// leave a spare for re-replication after a permanent loss and the
	// schedule has at most one node failure (a second holder dead at the
	// audit cut would exceed what 2+1 can mask — hostile, not checkable).
	// Drawn last, after CompactAfter, so replay lines predating
	// replication reproduce unchanged.
	if rng.Float64() < 1.0/3 {
		if workers >= 4 && len(sp.Failures) <= 1 && rng.Float64() < 0.5 {
			sp.Replication = "erasure"
			sp.DataShards, sp.ParityShards = 2, 1
		} else {
			sp.Replication = "buddy"
		}
	}

	// Sharded digest detection on a quarter of the wide seeds: workers
	// heartbeat to per-shard aggregators and the observer ingests one
	// digest per shard per period. Needs four workers so each of the two
	// shards still has a failover candidate when its aggregator dies.
	// Drawn last, after Replication, so earlier replay lines reproduce
	// unchanged.
	if workers >= 4 && rng.Float64() < 0.25 {
		sp.Shards = 2
	}

	// Lazy restart-before-read failover on about half the seeds. Drawn
	// last, after Shards, so earlier replay lines reproduce unchanged;
	// the digest checker then proves every lazy failover left memory
	// byte-identical to an eager restore's.
	if rng.Float64() < 0.5 {
		sp.LazyRestore = true
	}

	// Cadence policy: a third of the seeds run the Young/Daly engine,
	// a sixth the legacy adaptive consult, the rest stay fixed. Drawn
	// last, after LazyRestore, so earlier replay lines reproduce
	// unchanged.
	switch r := rng.Float64(); {
	case r < 1.0/3:
		sp.Policy = "youngdaly"
	case r < 0.5:
		sp.Policy = "adaptive"
	}

	// Live-content deltas on half the incremental seeds. Drawn last,
	// after Policy, for the same replay-stability reason; the draw
	// happens only on Incremental seeds so non-chain lines are
	// untouched.
	if sp.Incremental && rng.Float64() < 0.5 {
		sp.Liveness = true
	}
	return sp
}
