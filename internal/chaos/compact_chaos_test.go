package chaos

import "testing"

// compactionSpec forces server-side compaction onto a generated
// scenario: incremental shipping on and a tight fold bound, with the
// seed's own faults (node failures, partitions, storage faults) left
// intact. The generator draws CompactAfter on only half the incremental
// seeds; this sweep makes sure EVERY seed in range runs folds under
// fire.
func compactionSpec(seed int64) *Spec {
	sp := Generate(seed)
	sp.Incremental = true
	if sp.CompactAfter == 0 {
		sp.CompactAfter = 2 + int(seed%3) // 2..4, deterministic per seed
	}
	return sp
}

// TestChaosCompactionSweep: with compaction running concurrently with
// failovers, no seed may lose an acked checkpoint, leave the recovery
// pointer unrestorable, exceed the CompactAfter bound without a counted
// fold failure, or corrupt restored state. This is the chaos-level
// guarantee behind the fold protocol's ordering (durable publish before
// GC, fence checked at the commit point).
func TestChaosCompactionSweep(t *testing.T) {
	for seed := int64(1); seed <= 80; seed++ {
		r := Run(compactionSpec(seed))
		if len(r.Violations) > 0 {
			t.Errorf("seed %d: %s", seed, r.Summary())
			for _, v := range r.Violations {
				t.Errorf("  %s", v)
			}
			t.Errorf("  reproduce: %s", r.Spec.ReplayLine())
		}
	}
}

// TestChaosCompactionDeterministic: folding is background server-side
// work, but it ticks on the same simulated clock as everything else —
// two runs of a compaction-heavy spec must still produce equal digests.
func TestChaosCompactionDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		if ok, a, b := Confirm(compactionSpec(seed)); !ok {
			t.Fatalf("seed %d nondeterministic under compaction: digest %#x vs %#x",
				seed, a.Digest, b.Digest)
		}
	}
}
