package chaos

import (
	"testing"
)

// TestPolicyGeneratedMix pins that the generator actually draws the
// policy dimensions across the tier-1 sweep width: youngdaly and
// adaptive cadences, and liveness content on incremental seeds. A
// dimension the sweep never draws is a dimension chaos never tests.
func TestPolicyGeneratedMix(t *testing.T) {
	var youngdaly, adaptive, live int
	for seed := int64(1); seed <= sweepSeeds; seed++ {
		sp := Generate(seed)
		switch sp.Policy {
		case "youngdaly":
			youngdaly++
		case "adaptive":
			adaptive++
		}
		if sp.Liveness {
			live++
			if !sp.Incremental {
				t.Fatalf("seed %d: liveness drawn without incremental", seed)
			}
		}
	}
	if youngdaly == 0 || adaptive == 0 || live == 0 {
		t.Fatalf("generator mix: youngdaly=%d adaptive=%d liveness=%d of %d seeds (want all nonzero)",
			youngdaly, adaptive, live, sweepSeeds)
	}
	t.Logf("policy mix: youngdaly=%d adaptive=%d liveness=%d of %d", youngdaly, adaptive, live, sweepSeeds)
}

// TestPolicyForcedSweep forces the youngdaly cadence (and, on
// incremental seeds, the liveness content policy) onto every generated
// scenario and demands the full invariant catalog plus the work-lost
// economics checker stay silent: adapting the interval from measured
// MTBF may never lose an acked checkpoint, corrupt restored state, or
// lose more than twice the work of the fixed cadence on the same fault
// schedule.
func TestPolicyForcedSweep(t *testing.T) {
	checkers := func() []Checker { return append(DefaultCheckers(), NewWorkLostChecker()) }
	ran := 0
	for seed := int64(1); seed <= 80; seed++ {
		sp := Generate(seed)
		sp.Policy = "youngdaly"
		sp.Liveness = sp.Incremental
		ran++
		if r := RunChecked(sp, checkers()); len(r.Violations) > 0 {
			t.Errorf("seed %d: %s", seed, r.Summary())
			for _, v := range r.Violations {
				t.Errorf("  %s", v)
			}
			t.Errorf("  reproduce: %s", r.Spec.ReplayLine())
		}
	}
	t.Logf("policy sweep covered %d seeds", ran)
}

// TestPolicyForcedSweepDeterministic double-runs a handful of forced
// youngdaly+liveness scenarios: the adaptive cadence and the liveness
// exclusion set must both be schedule-stable or replay lines are
// worthless.
func TestPolicyForcedSweepDeterministic(t *testing.T) {
	checked := 0
	for seed := int64(1); seed <= 30 && checked < 4; seed++ {
		sp := Generate(seed)
		if !sp.Incremental {
			continue
		}
		sp.Policy = "youngdaly"
		sp.Liveness = true
		checked++
		if ok, a, b := Confirm(sp); !ok {
			t.Fatalf("policy seed %d nondeterministic: %#x vs %#x", seed, a.Digest, b.Digest)
		}
	}
	if checked == 0 {
		t.Fatal("no incremental seed in [1,30]")
	}
}

// TestPolicySpecValidation rejects policy specs the executor cannot
// run.
func TestPolicySpecValidation(t *testing.T) {
	base := Generate(1)

	sp := base.Clone()
	sp.Policy = "sometimes"
	if sp.validate() == nil {
		t.Error("unknown cadence policy accepted")
	}

	sp = base.Clone()
	sp.Incremental = false
	sp.Liveness = true
	if sp.validate() == nil {
		t.Error("liveness without incremental accepted")
	}

	for _, ok := range []string{"", "fixed", "youngdaly", "adaptive"} {
		sp = base.Clone()
		sp.Policy = ok
		if err := sp.validate(); err != nil {
			t.Errorf("policy %q rejected: %v", ok, err)
		}
	}
}
