package chaos

import (
	"reflect"
	"testing"
)

// sweepSeeds is the tier-1 sweep width. The nightly CI job runs 10k
// seeds via `crsurvey chaos`; this keeps every `go test` run honest.
const sweepSeeds = 200

// TestChaosSweep runs the generator across sweepSeeds consecutive seeds
// and demands zero invariant violations: with fencing on and atomic
// commit in place, no composition of storage faults, network chaos,
// partitions, and node failures the generator emits may lose an acked
// checkpoint, double-commit, corrupt restored state, consult the
// oracle, or wedge recovery.
func TestChaosSweep(t *testing.T) {
	for seed := int64(1); seed <= sweepSeeds; seed++ {
		r := Run(Generate(seed))
		if len(r.Violations) > 0 {
			t.Errorf("seed %d: %s", seed, r.Summary())
			for _, v := range r.Violations {
				t.Errorf("  %s", v)
			}
			t.Errorf("  reproduce: %s", r.Spec.ReplayLine())
		}
	}
}

// TestGenerateDeterministic pins the generator itself: one seed, one
// spec.
func TestGenerateDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 50; seed++ {
		a, b := Generate(seed), Generate(seed)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: Generate not deterministic:\n%s\n%s", seed, a.MarshalLine(), b.MarshalLine())
		}
	}
}

// TestSpecRoundTrip checks the reproducer exchange format: a spec must
// survive MarshalLine → ParseSpec unchanged, or printed replay lines
// would not rerun the scenario they came from.
func TestSpecRoundTrip(t *testing.T) {
	for seed := int64(1); seed <= 50; seed++ {
		sp := Generate(seed)
		got, err := ParseSpec(sp.MarshalLine())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !reflect.DeepEqual(sp, got) {
			t.Fatalf("seed %d: round trip changed spec:\n in %s\nout %s", seed, sp.MarshalLine(), got.MarshalLine())
		}
	}
}

// TestRunDeterministic double-runs a fenced scenario and requires equal
// digests — the foundation the whole harness stands on.
func TestRunDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		if ok, a, b := Confirm(Generate(seed)); !ok {
			t.Fatalf("seed %d nondeterministic: digest %#x vs %#x\n--- first ---\n%s\n--- second ---\n%s",
				seed, a.Digest, b.Digest, a.EventLog, b.EventLog)
		}
	}
}

// TestBrokenFencingCaught is the harness's own acceptance test: disable
// epoch fencing (the deliberately broken build), sweep seeds until the
// double-commit checker fires, confirm the violation is deterministic,
// shrink it to a minimal reproducer, and replay the printed line.
func TestBrokenFencingCaught(t *testing.T) {
	var sp *Spec
	for seed := int64(1); seed <= 60; seed++ {
		cand := Generate(seed)
		cand.NoFencing = true
		if Run(cand).Violated("double-commit") {
			sp = cand
			break
		}
	}
	if sp == nil {
		t.Fatal("no seed in [1,60] produced a double commit with fencing disabled")
	}

	ok, a, b := Confirm(sp)
	if !ok {
		t.Fatalf("violation did not confirm: digest %#x vs %#x", a.Digest, b.Digest)
	}
	if !a.Violated("double-commit") {
		t.Fatal("confirmation run lost the violation")
	}

	min, evals := Shrink(sp, "double-commit")
	if min.Size() > sp.Size() {
		t.Fatalf("shrink grew the spec: %d -> %d", sp.Size(), min.Size())
	}
	t.Logf("shrunk size %d -> %d in %d runs", sp.Size(), min.Size(), evals)
	t.Logf("reproduce: %s", min.ReplayLine())

	r, err := Replay(min.Seed, min.MarshalLine())
	if err != nil {
		t.Fatal(err)
	}
	if !r.Violated("double-commit") {
		t.Fatalf("shrunken reproducer no longer violates: %s", r.Summary())
	}
}

// TestReplayPinnedReproducer replays a shrunken reproducer that
// TestBrokenFencingCaught once printed — the exact workflow a failing
// nightly seed turns into a regression test. The spec is a 3-node
// cluster where the sole discrete fault is a partition islanding the
// worker: with fencing off, the isolated incarnation's stale publish
// lands after the spare took over.
func TestReplayPinnedReproducer(t *testing.T) {
	r, err := Replay(5, `{"seed":5,"nodes":3,"mib":1,"wf":0.2558857741681152,"wseed":33177,"iters":36,"interval":5000000,"detector":"phi-8","hb":264000,"storage":{},"partitions":[{"at":3597512,"heal":15597512,"side":[0]}],"quiesce":17597512,"budget":3017597512,"nofence":true}`)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Violated("double-commit") {
		t.Fatalf("pinned reproducer no longer violates: %s", r.Summary())
	}
}

// TestReplayEmptySpecRegenerates checks the seed-only replay path.
func TestReplayEmptySpecRegenerates(t *testing.T) {
	r, err := Replay(7, "")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r.Spec, Generate(7)) {
		t.Fatal("Replay(seed, \"\") did not regenerate the seed's spec")
	}
	if len(r.Violations) > 0 {
		t.Fatalf("seed 7 violates: %s", r.Summary())
	}
}

// TestSpecValidation rejects specs the executor cannot run.
func TestSpecValidation(t *testing.T) {
	base := Generate(1)
	for name, mutate := range map[string]func(*Spec){
		"too-few-nodes":      func(s *Spec) { s.Nodes = 2 },
		"empty-workload":     func(s *Spec) { s.Iterations = 0 },
		"zero-interval":      func(s *Spec) { s.Cadence = 0 },
		"zero-heartbeat":     func(s *Spec) { s.HBPeriod = 0 },
		"budget-lt-quiesce":  func(s *Spec) { s.Budget = s.Quiesce },
		"fail-observer":      func(s *Spec) { s.Failures = []FailEvent{{At: 1, Node: s.observer()}} },
		"partition-observer": func(s *Spec) { s.Partitions = []PartitionEvent{{At: 1, Heal: 2, Side: []int{s.observer()}}} },
		"unhealed-partition": func(s *Spec) { s.Partitions = []PartitionEvent{{At: 5, Heal: 5, Side: []int{0}}} },
	} {
		sp := base.Clone()
		mutate(sp)
		if sp.validate() == nil {
			t.Errorf("%s: validate accepted a bad spec", name)
		}
	}
}
