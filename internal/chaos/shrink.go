package chaos

import "repro/internal/simtime"

// ShrinkBudget caps how many scenario re-runs one Shrink call may spend.
const ShrinkBudget = 120

// Shrink greedily minimizes a violating scenario: it tries dropping each
// node failure and partition, zeroing the probabilistic storage and
// network faults, halving the workload, tightening the schedule, and
// removing unreferenced nodes — keeping a candidate only if the named
// invariant still fires. The result is a local minimum: removing any
// single remaining element makes the violation disappear. Returns the
// minimal spec and the number of runs spent.
func Shrink(sp *Spec, invariant string) (*Spec, int) {
	evals := 0
	violates := func(cand *Spec) bool {
		if evals >= ShrinkBudget || cand.validate() != nil {
			return false
		}
		evals++
		return Run(cand).Violated(invariant)
	}

	cur := sp.Clone()
	for {
		improved := false
		for _, cand := range candidates(cur) {
			if cand.Size() < cur.Size() && violates(cand) {
				cur = cand
				improved = true
				break // restart the pass from the smaller spec
			}
		}
		if !improved || evals >= ShrinkBudget {
			return cur, evals
		}
	}
}

// candidates enumerates one-step reductions of a spec, cheapest wins
// first (drop a whole fault before trimming the workload).
func candidates(sp *Spec) []*Spec {
	var out []*Spec
	for i := range sp.Failures {
		c := sp.Clone()
		c.Failures = append(c.Failures[:i:i], c.Failures[i+1:]...)
		out = append(out, c)
	}
	for i := range sp.Partitions {
		c := sp.Clone()
		c.Partitions = append(c.Partitions[:i:i], c.Partitions[i+1:]...)
		out = append(out, c)
	}
	if sp.Storage != (StorageSpec{}) {
		c := sp.Clone()
		c.Storage = StorageSpec{}
		out = append(out, c)
	}
	if sp.Loss > 0 || sp.Dup > 0 || sp.Jitter > 0 {
		c := sp.Clone()
		c.Loss, c.Dup, c.Jitter = 0, 0, 0
		out = append(out, c)
	}
	if sp.Replication != "" {
		c := sp.Clone()
		c.Replication, c.DataShards, c.ParityShards = "", 0, 0
		out = append(out, c)
	}
	if sp.Shards != 0 {
		c := sp.Clone()
		c.Shards = 0
		out = append(out, c)
	}
	if sp.Iterations > 10 {
		c := sp.Clone()
		c.Iterations /= 2
		out = append(out, c)
	}
	if c := dropTopWorker(sp); c != nil {
		out = append(out, c)
	}
	if c := tightenSchedule(sp); c != nil {
		out = append(out, c)
	}
	return out
}

// dropTopWorker removes the highest-numbered worker when no remaining
// fault references it (the observer renumbers down by one with it).
func dropTopWorker(sp *Spec) *Spec {
	if sp.Nodes <= 3 {
		return nil
	}
	top := sp.workers() - 1
	for _, f := range sp.Failures {
		if f.Node == top {
			return nil
		}
	}
	for _, p := range sp.Partitions {
		for _, n := range p.Side {
			if n == top {
				return nil
			}
		}
	}
	c := sp.Clone()
	c.Nodes--
	if c.Shards > c.workers() {
		c.Shards = c.workers()
	}
	return c
}

// tightenSchedule pulls the quiesce point down to just past the last
// remaining discrete fault (shortening the window a reproducer has to
// be watched for).
func tightenSchedule(sp *Spec) *Spec {
	last := simtime.Duration(0)
	for _, f := range sp.Failures {
		if end := f.At + f.Repair; end > last {
			last = end
		}
	}
	for _, p := range sp.Partitions {
		if p.Heal > last {
			last = p.Heal
		}
	}
	q := last + 2*simtime.Millisecond
	if q >= sp.Quiesce {
		return nil
	}
	c := sp.Clone()
	c.Quiesce = q
	c.Budget = q + genDrain
	for i := range c.Partitions {
		if c.Partitions[i].Heal > c.Quiesce {
			c.Partitions[i].Heal = c.Quiesce
		}
	}
	return c
}
