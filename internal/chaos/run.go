package chaos

import (
	"fmt"
	"hash/fnv"
	"sort"

	"repro/internal/cluster"
	"repro/internal/costmodel"
	"repro/internal/detector"
	"repro/internal/mechanism"
	"repro/internal/simos/kernel"
	"repro/internal/simos/proc"
	"repro/internal/simtime"
	"repro/internal/storage"
	"repro/internal/syslevel"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Result is everything one scenario run produced.
type Result struct {
	Spec        *Spec
	Completed   bool
	Aborted     string // terminal supervisor error, "" when none
	Fingerprint uint64
	Want        uint64 // reference fingerprint
	Makespan    simtime.Duration
	Checkpoints int
	Restarts    int
	FromScratch int
	Violations  []Violation

	// WorkLost summarizes the supervisor's policy.work_lost histogram:
	// one observation per failure, measuring the progress gap the
	// failure destroyed. The policy checkers and crbench compare its
	// total (Mean·N) across cadence strategies.
	WorkLost trace.HistSnapshot

	// EventLog is the rendered orchestration + suspicion event stream;
	// Counters the sorted counter snapshot. Digest hashes both plus the
	// end state — two runs of the same spec must produce equal digests.
	EventLog string
	Counters string
	Digest   uint64
}

// WorkLostTotalMS is the total simulated milliseconds of work lost to
// failures across the run.
func (r *Result) WorkLostTotalMS() float64 { return r.WorkLost.Mean * float64(r.WorkLost.N) }

// Violated reports whether the named invariant was breached.
func (r *Result) Violated(invariant string) bool {
	for _, v := range r.Violations {
		if v.Invariant == invariant {
			return true
		}
	}
	return false
}

// Summary is a one-line human rendering of the outcome.
func (r *Result) Summary() string {
	s := fmt.Sprintf("seed=%d nodes=%d det=%s completed=%v ckpts=%d restarts=%d",
		r.Spec.Seed, r.Spec.Nodes, r.Spec.Detector, r.Completed, r.Checkpoints, r.Restarts)
	if len(r.Violations) > 0 {
		s += fmt.Sprintf(" VIOLATIONS=%d (%s)", len(r.Violations), r.Violations[0].Invariant)
	}
	return s
}

// maxRelaunches bounds operator relaunches of an aborted supervisor
// within one scenario (an abort is "no unsuspected spare node" — the
// controller gave up; the harness restarts it once conditions change).
const maxRelaunches = 16

// Run executes one scenario under the default invariant catalog.
func Run(sp *Spec) *Result { return RunChecked(sp, DefaultCheckers()) }

// RunChecked executes one scenario with an explicit checker registry.
func RunChecked(sp *Spec, checkers []Checker) *Result {
	if err := sp.validate(); err != nil {
		return &Result{Spec: sp, Violations: []Violation{{Invariant: "spec", Detail: err.Error()}}}
	}
	prog := workload.Sparse{MiB: sp.MiB, WriteFrac: sp.WriteFrac, Seed: uint64(sp.WorkSeed)}
	want := referenceFingerprint(prog, sp.Iterations)

	reg := kernel.NewRegistry()
	reg.MustRegister(prog)
	c := cluster.New(cluster.Config{Nodes: sp.Nodes, Seed: sp.Seed, KernelCfg: kernel.DefaultConfig("")},
		costmodel.Default2005(), reg)
	np := c.EnableNetFaults(cluster.NetFaultConfig{
		Loss: sp.Loss, Duplicate: sp.Dup, DelayJitter: sp.Jitter,
	})
	if sp.Storage != (StorageSpec{}) {
		c.EnableStorageFaults(cluster.StorageFaultConfig{
			WriteFault:   sp.Storage.WriteFault,
			OutageFrac:   sp.Storage.OutageFrac,
			SilentTear:   sp.Storage.SilentTear,
			PublishFault: sp.Storage.PublishFault,
		})
	}
	installFaultSchedule(c, np, sp)

	det, err := buildDetector(sp.Detector, sp.HBPeriod)
	if err != nil {
		return &Result{Spec: sp, Violations: []Violation{{Invariant: "spec", Detail: err.Error()}}}
	}
	// Sharded seeds route detection through the digest path: per-shard
	// aggregators fold worker heartbeats and the observer ingests one
	// digest per shard per period. Both monitors satisfy the supervisor's
	// FailureDetector contract and expose the suspicion event log.
	var mon interface {
		cluster.FailureDetector
		Events() []detector.Event
	}
	if sp.Shards >= 2 {
		mon = detector.NewShardMonitor(c, det,
			detector.ShardConfig{Shards: sp.Shards, Period: sp.HBPeriod, Observer: sp.observer()}, c.Counters)
	} else {
		mon = detector.NewMonitor(c, det, detector.Config{Period: sp.HBPeriod, Observer: sp.observer()}, c.Counters)
	}

	sup, err := cluster.NewSupervisor(cluster.SupervisorConfig{
		C:            c,
		MkMech:       func() mechanism.Mechanism { return syslevel.NewCRAK() },
		Prog:         prog,
		Iterations:   sp.Iterations,
		Policy:       sp.policySpec(),
		Incremental:  sp.Incremental,
		RebaseEvery:  sp.RebaseEvery,
		CompactAfter: sp.CompactAfter,
		LazyRestore:  sp.LazyRestore,
		Detector:     mon,
		ControlNode:  sp.observer(),
		NoFencing:    sp.NoFencing,
		Pipeline:     sp.pipelineConfig(),
		Replication:  sp.replicationConfig(),
	})
	if err != nil {
		// A generated scenario that the supervisor itself rejects is a
		// spec-level violation, not a crash.
		return &Result{Spec: sp, Violations: []Violation{{Invariant: "spec", Detail: err.Error()}}}
	}
	sup.OnEvent = func(ev cluster.Event) {
		for _, ck := range checkers {
			ck.Event(ev)
		}
	}

	// Drive the supervisor, relaunching after terminal aborts (it gives
	// up when every spare is suspected at a failover instant) until the
	// job completes or the scenario budget runs out.
	deadline := simtime.Time(sp.Budget)
	var runErr error
	for i := 0; i <= maxRelaunches && c.Now() < deadline; i++ {
		runErr = sup.Run(deadline.Sub(c.Now()))
		if sup.Completed || runErr == nil {
			break
		}
		if c.Now() < deadline {
			c.RunFor(2 * simtime.Millisecond) // relaunch delay
		}
	}

	// End-of-run audit. The checkpoint server's auto-heal only ticks
	// with the cluster clock; close any outage left dangling at the cut
	// so durability reads measure what was committed, not the outage.
	// On replicated seeds the server alone is the wrong witness — an
	// acked image may legally live only on node-local disks (always, in
	// erasure mode) — so durability reads go through a reader spanning
	// every disk in the cluster plus the server.
	c.Server.Recover()
	auditTgt := storage.Target(storage.NewRemote("chaos-audit", c.Server))
	if sp.Replication != "" {
		auditTgt = newAuditReader(c, sp.Replication == "erasure", nil)
	}
	audit := &Audit{
		Spec: sp, Sup: sup, C: c, Want: want,
		ReadObject: func(name string) ([]byte, error) {
			return auditTgt.ReadObject(name, nil)
		},
		Target:  auditTgt,
		Aborted: runErr,
	}
	res := &Result{
		Spec:        sp,
		Completed:   sup.Completed,
		Fingerprint: sup.Fingerprint,
		Want:        want,
		Makespan:    sup.Makespan,
		Checkpoints: sup.Checkpoints,
		Restarts:    sup.Restarts,
		FromScratch: sup.FromScratch,
	}
	if runErr != nil {
		res.Aborted = runErr.Error()
	}
	res.WorkLost = sup.Metrics.Hist("policy.work_lost").Snapshot()
	for _, ck := range checkers {
		res.Violations = append(res.Violations, ck.Finish(audit)...)
	}

	res.EventLog = cluster.FormatEvents(sup.Events) + formatSuspicions(mon.Events())
	res.Counters = c.Counters.String()
	res.Digest = digest(res)
	return res
}

// referenceFingerprint runs the workload undisturbed on a pristine
// single-node cluster — the ground truth the state-digest invariant
// compares against.
func referenceFingerprint(prog workload.Sparse, iters uint64) uint64 {
	reg := kernel.NewRegistry()
	reg.MustRegister(prog)
	c := cluster.New(cluster.Config{Nodes: 1, Seed: 0, KernelCfg: kernel.DefaultConfig("")},
		costmodel.Default2005(), reg)
	p, err := c.Node(0).K.Spawn(prog.Name())
	if err != nil {
		return 0
	}
	workload.SetIterations(p, iters)
	if !c.RunUntil(func() bool { return p.State == proc.StateZombie }, simtime.Minute) {
		return 0
	}
	return workload.Fingerprint(p)
}

// installFaultSchedule arms the spec's discrete fault events on the
// cluster step: node failures (with reboots for transient ones) and
// named partitions that open and heal at fixed instants.
func installFaultSchedule(c *cluster.Cluster, np *cluster.NetPolicy, sp *Spec) {
	fails := append([]FailEvent(nil), sp.Failures...)
	sort.SliceStable(fails, func(i, j int) bool { return fails[i].At < fails[j].At })
	type rebootAt struct {
		at   simtime.Time
		node int
	}
	var reboots []rebootAt
	type partState struct {
		ev     PartitionEvent
		name   string
		opened bool
		healed bool
	}
	parts := make([]*partState, len(sp.Partitions))
	for i, p := range sp.Partitions {
		parts[i] = &partState{ev: p, name: fmt.Sprintf("chaos-cut-%d", i)}
	}
	c.OnStep(func() {
		now := c.Now()
		for len(fails) > 0 && now >= simtime.Time(fails[0].At) {
			f := fails[0]
			fails = fails[1:]
			wasAlive := c.Node(f.Node).Alive()
			kind := cluster.Transient
			if f.Permanent {
				kind = cluster.Permanent
			}
			c.FailKind(f.Node, kind)
			if wasAlive && !f.Permanent {
				reboots = append(reboots, rebootAt{at: now.Add(f.Repair), node: f.Node})
			}
		}
		kept := reboots[:0]
		for _, r := range reboots {
			if now >= r.at {
				c.Reboot(r.node)
			} else {
				kept = append(kept, r)
			}
		}
		reboots = kept
		for _, p := range parts {
			if !p.opened && now >= simtime.Time(p.ev.At) {
				p.opened = true
				np.Partition(p.name, p.ev.Side...)
			}
			if p.opened && !p.healed && now >= simtime.Time(p.ev.Heal) {
				p.healed = true
				np.Heal(p.name)
			}
		}
	})
}

// buildDetector instantiates a detector by its spec name.
func buildDetector(name string, hb simtime.Duration) (detector.Detector, error) {
	switch name {
	case "timeout-1ms":
		return detector.NewTimeout(simtime.Millisecond), nil
	case "timeout-2ms":
		return detector.NewTimeout(2 * simtime.Millisecond), nil
	case "timeout-3ms":
		return detector.NewTimeout(3 * simtime.Millisecond), nil
	case "phi-4":
		return detector.NewPhiAccrual(4, 64, hb/2), nil
	case "phi-8":
		return detector.NewPhiAccrual(8, 64, hb/2), nil
	case "phi-12":
		return detector.NewPhiAccrual(12, 64, hb/2), nil
	}
	return nil, fmt.Errorf("chaos: unknown detector %q", name)
}

// formatSuspicions renders the monitor's suspicion transitions in a
// fixed format for the event log and digest.
func formatSuspicions(evs []detector.Event) string {
	s := ""
	for _, e := range evs {
		verdict := "cleared"
		if e.Suspected {
			verdict = "suspected"
			if e.FalsePositive {
				verdict = "suspected(false)"
			}
		}
		s += fmt.Sprintf("%dns det node=%d %s\n", int64(e.At), e.Node, verdict)
	}
	return s
}

// digest hashes the observable outcome of a run; equal specs must yield
// equal digests or the simulation has a nondeterminism bug.
func digest(r *Result) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "completed=%v fp=%#x makespan=%d ckpts=%d restarts=%d scratch=%d aborted=%q\n",
		r.Completed, r.Fingerprint, int64(r.Makespan), r.Checkpoints, r.Restarts, r.FromScratch, r.Aborted)
	h.Write([]byte(r.EventLog))
	h.Write([]byte(r.Counters))
	for _, v := range r.Violations {
		h.Write([]byte(v.String()))
		h.Write([]byte{'\n'})
	}
	return h.Sum64()
}
