package chaos

import (
	"bytes"
	"testing"

	"repro/internal/cluster"
	"repro/internal/costmodel"
	"repro/internal/simos/kernel"
	"repro/internal/storage"
	"repro/internal/storage/erasure"
)

// TestReplicationGeneratedMix pins that the generator actually draws
// both placement modes across the tier-1 sweep width — the sweep is the
// replication acceptance gate only if replicated seeds exist in it.
func TestReplicationGeneratedMix(t *testing.T) {
	buddy, ec := 0, 0
	for seed := int64(1); seed <= sweepSeeds; seed++ {
		switch Generate(seed).Replication {
		case "buddy":
			buddy++
		case "erasure":
			ec++
		}
	}
	if buddy == 0 || ec == 0 {
		t.Fatalf("generator drew buddy=%d erasure=%d replicated seeds in [1,%d]", buddy, ec, sweepSeeds)
	}
	t.Logf("replicated seeds: buddy=%d erasure=%d of %d", buddy, ec, sweepSeeds)
}

// TestReplicationForcedBuddySweep forces buddy mirroring onto every
// generated scenario (whatever its fault schedule) and demands the full
// invariant catalog stay silent — including the repl-durability masks
// and the repl-converged end-state audit.
func TestReplicationForcedBuddySweep(t *testing.T) {
	for seed := int64(1); seed <= 60; seed++ {
		sp := Generate(seed)
		sp.Replication, sp.DataShards, sp.ParityShards = "buddy", 0, 0
		if r := Run(sp); len(r.Violations) > 0 {
			t.Errorf("seed %d: %s", seed, r.Summary())
			for _, v := range r.Violations {
				t.Errorf("  %s", v)
			}
			t.Errorf("  reproduce: %s", r.Spec.ReplayLine())
		}
	}
}

// TestReplicationForcedErasureSweep forces 2+1 erasure coding onto every
// generated scenario wide enough to hold it, under the same constraint
// the generator applies (at most one node failure — a second holder dead
// at the audit cut exceeds what 2+1 can mask).
func TestReplicationForcedErasureSweep(t *testing.T) {
	ran := 0
	for seed := int64(1); seed <= 120; seed++ {
		sp := Generate(seed)
		if sp.workers() < 4 || len(sp.Failures) > 1 {
			continue
		}
		sp.Replication, sp.DataShards, sp.ParityShards = "erasure", 2, 1
		ran++
		if r := Run(sp); len(r.Violations) > 0 {
			t.Errorf("seed %d: %s", seed, r.Summary())
			for _, v := range r.Violations {
				t.Errorf("  %s", v)
			}
			t.Errorf("  reproduce: %s", r.Spec.ReplayLine())
		}
	}
	if ran < 10 {
		t.Fatalf("only %d seeds in [1,120] were erasure-eligible", ran)
	}
	t.Logf("erasure sweep covered %d seeds", ran)
}

// TestReplicationRunDeterministic double-runs replicated scenarios of
// both modes and requires equal digests: the fan-out writes, repair
// sweeps, and audit reads must all be schedule-stable.
func TestReplicationRunDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		sp := Generate(seed)
		sp.Replication = "buddy"
		if ok, a, b := Confirm(sp); !ok {
			t.Fatalf("buddy seed %d nondeterministic: %#x vs %#x", seed, a.Digest, b.Digest)
		}
		if sp = Generate(seed); sp.workers() >= 4 && len(sp.Failures) <= 1 {
			sp.Replication, sp.DataShards, sp.ParityShards = "erasure", 2, 1
			if ok, a, b := Confirm(sp); !ok {
				t.Fatalf("erasure seed %d nondeterministic: %#x vs %#x", seed, a.Digest, b.Digest)
			}
		}
	}
}

// TestReplicationSpecValidation rejects the replication knobs the
// executor cannot run.
func TestReplicationSpecValidation(t *testing.T) {
	base := Generate(1)
	for name, mutate := range map[string]func(*Spec){
		"unknown-mode":          func(s *Spec) { s.Replication = "raid6" },
		"geometry-without-mode": func(s *Spec) { s.DataShards = 2 },
		"geometry-with-buddy":   func(s *Spec) { s.Replication = "buddy"; s.ParityShards = 1 },
		"erasure-too-wide":      func(s *Spec) { s.Replication = "erasure"; s.DataShards = 5; s.ParityShards = 2 },
	} {
		sp := base.Clone()
		mutate(sp)
		if sp.validate() == nil {
			t.Errorf("%s: validate accepted a bad spec", name)
		}
	}
	ok := base.Clone()
	ok.Replication = "buddy"
	if err := ok.validate(); err != nil {
		t.Errorf("buddy spec rejected: %v", err)
	}
}

// auditCluster builds a bare cluster (no supervisor) whose disks the
// auditReader tests populate by hand.
func auditCluster(t *testing.T, nodes int) *cluster.Cluster {
	t.Helper()
	return cluster.New(cluster.Config{Nodes: nodes, Seed: 1, KernelCfg: kernel.DefaultConfig("")},
		costmodel.Default2005(), kernel.NewRegistry())
}

// TestAuditReaderMirrorUnionAndMask: the union reader finds a copy on
// whichever disk holds it, falls back to the server, and a masked slot
// becomes invisible — the mechanics every repl-durability verdict rests
// on.
func TestAuditReaderMirrorUnionAndMask(t *testing.T) {
	c := auditCluster(t, 3)
	payload := []byte("only on node 1")
	if err := storage.Write(c.Node(1).Disk, "obj", payload, storage.WriteOptions{Atomic: true}); err != nil {
		t.Fatal(err)
	}
	if got, err := newAuditReader(c, false, nil).ReadObject("obj", nil); err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("union read: %v %q", err, got)
	}
	if _, err := newAuditReader(c, false, map[int]bool{1: true}).ReadObject("obj", nil); err == nil {
		t.Fatal("masked slot still visible")
	}
	// Server fallback: an object only the server holds.
	srvOnly := []byte("server copy")
	if err := storage.Write(storage.NewRemote("t", c.Server), "srv-obj", srvOnly, storage.WriteOptions{Atomic: true}); err != nil {
		t.Fatal(err)
	}
	if got, err := newAuditReader(c, false, nil).ReadObject("srv-obj", nil); err != nil || !bytes.Equal(got, srvOnly) {
		t.Fatalf("server fallback: %v", err)
	}
	if _, err := newAuditReader(c, false, map[int]bool{auditServer: true}).ReadObject("srv-obj", nil); err == nil {
		t.Fatal("masked server still visible")
	}
}

// TestAuditReaderErasureDecode: shards scattered across disks decode
// through the union; losing any single holder still decodes (k of k+m
// survive); losing two does not.
func TestAuditReaderErasureDecode(t *testing.T) {
	c := auditCluster(t, 4)
	payload := bytes.Repeat([]byte("erasure coded checkpoint "), 100)
	shards, err := erasure.EncodeObject(payload, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i, sh := range shards {
		if err := storage.Write(c.Node(i).Disk, "obj", sh, storage.WriteOptions{Atomic: true}); err != nil {
			t.Fatal(err)
		}
	}
	if got, err := newAuditReader(c, true, nil).ReadObject("obj", nil); err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("full decode: %v", err)
	}
	if got, err := newAuditReader(c, true, map[int]bool{0: true}).ReadObject("obj", nil); err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("decode missing one shard: %v", err)
	}
	if _, err := newAuditReader(c, true, map[int]bool{0: true, 2: true}).ReadObject("obj", nil); err == nil {
		t.Fatal("decoded with only k-1 shards")
	}
}
