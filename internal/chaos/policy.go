// Policy-dimension invariants: the chaos harness exercises the
// Young/Daly cadence engine and the liveness content policy under the
// same fault soup as everything else, and this checker adds the one
// economic invariant a cadence policy owes its user — adapting the
// interval must not cost materially more lost work than not adapting.

package chaos

import (
	"fmt"

	"repro/internal/cluster"
)

// NewWorkLostChecker returns the policy economics invariant: on a
// youngdaly seed, the total work lost to failures must stay within
// workLostFactor of a fixed-cadence twin run of the same spec and seed.
// The checker reruns the twin inside Finish, so it is not part of
// DefaultCheckers — the policy sweep opts in.
func NewWorkLostChecker() Checker { return &workLostChecker{} }

// workLostFactor bounds youngdaly work lost relative to the fixed twin.
// 2x, not 1x: on a single short scenario the adaptive cadence can lose
// one extra partial interval to an unluckily placed failure; what it
// must never do is collapse (stop checkpointing, lose the whole run).
const workLostFactor = 2.0

// workLostSlackMS absorbs quantization on nearly-failure-free seeds
// where both totals are a few scheduler ticks wide.
const workLostSlackMS = 2.0

type workLostChecker struct{}

func (*workLostChecker) Name() string { return "policy-work-lost" }

func (*workLostChecker) Event(cluster.Event) {}

func (*workLostChecker) Finish(a *Audit) []Violation {
	if a.Spec.Policy != "youngdaly" || a.Sup == nil {
		return nil
	}
	snap := a.Sup.Metrics.Hist("policy.work_lost").Snapshot()
	got := snap.Mean * float64(snap.N)

	twin := a.Spec.Clone()
	twin.Policy = "" // fixed cadence at the same base interval
	ref := RunChecked(twin, nil)
	want := ref.WorkLostTotalMS()

	if got > workLostFactor*want+workLostSlackMS {
		return []Violation{{
			Invariant: "policy-work-lost",
			Detail: fmt.Sprintf("youngdaly lost %.2fms of work vs fixed twin %.2fms (bound %.1fx+%.0fms)",
				got, want, workLostFactor, workLostSlackMS),
		}}
	}
	return nil
}
