package chaos

import (
	"fmt"

	"repro/internal/checkpoint"
	"repro/internal/cluster"
	"repro/internal/storage"
)

// Violation is one invariant breach observed in a run.
type Violation struct {
	// Invariant names the checker that fired (stable identifiers: the
	// sweep tables and shrinker key on them).
	Invariant string `json:"invariant"`
	Detail    string `json:"detail"`
}

func (v Violation) String() string { return v.Invariant + ": " + v.Detail }

// Audit is the end-of-run evidence handed to each checker's Finish: the
// harness MAY read simulator ground truth here (it is the test oracle,
// not the decision path under test).
type Audit struct {
	Spec *Spec
	Sup  *cluster.Supervisor
	C    *cluster.Cluster
	// Want is the reference fingerprint from an undisturbed run of the
	// same workload.
	Want uint64
	// ReadObject reads an object from the checkpoint server.
	ReadObject func(name string) ([]byte, error)
	// Target is a read-side handle on the checkpoint server for checkers
	// that exercise the real restore entry points (LoadChain) instead of
	// reading objects one by one.
	Target storage.Target
	// Aborted is the supervisor's terminal error, if it gave up.
	Aborted error
}

// Checker observes orchestration events during a run and audits the end
// state. Implementations must be deterministic.
type Checker interface {
	// Name is the stable invariant identifier.
	Name() string
	// Event is called for every orchestration event as it happens.
	Event(ev cluster.Event)
	// Finish audits the end state and returns any violations.
	Finish(a *Audit) []Violation
}

// DefaultCheckers returns the full invariant catalog, fresh state each
// call (checkers accumulate per-run observations).
func DefaultCheckers() []Checker {
	return []Checker{
		&doubleCommitChecker{},
		&ackedDurabilityChecker{},
		&restorableChecker{},
		&digestChecker{},
		&oracleChecker{},
		&livenessChecker{},
		&replDurabilityChecker{},
		replConvergedChecker{},
	}
}

// --- no double commit past a fence epoch ---

// doubleCommitChecker fires when a stale-epoch incarnation's publish
// lands. With fencing enabled this is structurally impossible; with
// fencing disabled (the broken-build contrast) this is the checker that
// must catch it.
type doubleCommitChecker struct {
	stale []cluster.Event
}

func (c *doubleCommitChecker) Name() string { return "double-commit" }

func (c *doubleCommitChecker) Event(ev cluster.Event) {
	if ev.Kind == cluster.EvStaleCommit {
		c.stale = append(c.stale, ev)
	}
}

func (c *doubleCommitChecker) Finish(a *Audit) []Violation {
	n := a.C.Counters.Get("fence.double_commits")
	if len(c.stale) == 0 && n == 0 {
		return nil
	}
	first := ""
	if len(c.stale) > 0 {
		first = " first: " + c.stale[0].String()
	}
	return []Violation{{Invariant: c.Name(), Detail: fmt.Sprintf(
		"%d stale-epoch publishes landed (fence.double_commits=%d)%s", len(c.stale), n, first)}}
}

// --- no acknowledged checkpoint lost after publish ---

// ackedDurabilityChecker records every checkpoint the orchestration
// layer acknowledged (EvAck = published atomically and the supervisor's
// recovery pointer updated) and verifies at the end that each name still
// holds a decodable image on the server. Atomic commit makes replacement
// and rebase-driven garbage collection (EvRetire) the only legal
// mutations — a torn, truncated, or vanished object under an acked,
// unretired name is a violation. With delta chains the durability unit
// widens from the object to its ancestry: the final acked leaf must walk
// parent links to an intact full image without meeting a retired or
// unreadable ancestor, or restore would silently lose a mid-chain delta.
// The ckpt.torn / ckpt.lost counters catch the same breaches when
// recovery trips over them mid-run.
type ackedDurabilityChecker struct {
	acked   []string
	seen    map[string]bool
	retired map[string]bool
	lastAck string
}

func (c *ackedDurabilityChecker) Name() string { return "acked-durability" }

func (c *ackedDurabilityChecker) Event(ev cluster.Event) {
	switch ev.Kind {
	case cluster.EvAck:
		if c.seen == nil {
			c.seen = make(map[string]bool)
		}
		c.lastAck = ev.Object
		if !c.seen[ev.Object] {
			c.seen[ev.Object] = true
			c.acked = append(c.acked, ev.Object)
		}
	case cluster.EvRetire:
		if c.retired == nil {
			c.retired = make(map[string]bool)
		}
		c.retired[ev.Object] = true
	}
}

func (c *ackedDurabilityChecker) Finish(a *Audit) []Violation {
	var out []Violation
	if torn := a.C.Counters.Get("ckpt.torn"); torn > 0 {
		out = append(out, Violation{c.Name(), fmt.Sprintf("recovery read %d torn committed image(s)", torn)})
	}
	if lost := a.C.Counters.Get("ckpt.lost"); lost > 0 {
		out = append(out, Violation{c.Name(), fmt.Sprintf("%d committed image(s) vanished", lost)})
	}
	// On replicated seeds, per-object durability narrows to the live
	// chain: a superseded incarnation's replicas legally die with their
	// nodes once the recovery pointer has moved past them — unretired
	// only because the run was cut before GC caught up. The live chain
	// (which restore actually needs) keeps the full obligation, walked
	// below and by the chain-restorable and repl-durability checkers.
	var live map[string]bool
	if a.Spec.Replication != "" {
		live = make(map[string]bool)
		for _, o := range a.Sup.ChainObjects() {
			live[o] = true
		}
	}
	for _, name := range c.acked {
		if c.retired[name] {
			continue // legally garbage-collected after a rebase
		}
		if live != nil && !live[name] {
			continue
		}
		data, err := a.ReadObject(name)
		if err != nil {
			out = append(out, Violation{c.Name(), fmt.Sprintf("acked %s unreadable: %v", name, err)})
			continue
		}
		if _, err := checkpoint.Decode(data); err != nil {
			out = append(out, Violation{c.Name(), fmt.Sprintf("acked %s corrupt: %v", name, err)})
		}
	}
	return append(out, c.chainViolations(a)...)
}

// chainViolations walks the final acked leaf's ancestry on the server:
// every hop must be readable, decodable, unretired, and the walk must
// end at a full image. This is the invariant GC and PutChained together
// promise — a restore from the recovery pointer can always replay an
// intact chain.
func (c *ackedDurabilityChecker) chainViolations(a *Audit) []Violation {
	name := c.lastAck
	if name == "" {
		return nil
	}
	for hops := 0; ; hops++ {
		if hops > 4096 {
			return []Violation{{c.Name(), fmt.Sprintf("chain from %s did not terminate in a full image", c.lastAck)}}
		}
		if c.retired[name] {
			return []Violation{{c.Name(), fmt.Sprintf("live-chain ancestor %s was garbage-collected", name)}}
		}
		data, err := a.ReadObject(name)
		if err != nil {
			return []Violation{{c.Name(), fmt.Sprintf("live-chain ancestor %s unreadable: %v", name, err)}}
		}
		img, err := checkpoint.Decode(data)
		if err != nil {
			return []Violation{{c.Name(), fmt.Sprintf("live-chain ancestor %s corrupt: %v", name, err)}}
		}
		if img.Mode == checkpoint.ModeFull {
			return nil
		}
		if img.Parent == "" {
			return []Violation{{c.Name(), fmt.Sprintf("incremental image %s has no parent", name)}}
		}
		name = img.Parent
	}
}

// --- the recovery pointer always loads a bounded, intact chain ---

// restorableChecker exercises the real restore entry point against the
// final recovery pointer: checkpoint.LoadChain from the last acked leaf
// must succeed — walking parent links, verifying the chain, bounded
// against cycles — exactly as a failover at the instant the run ended
// would. This subsumes per-object durability with the property restore
// actually needs, and it is the invariant compaction could most easily
// break: a fold that deleted a delta before its replacement was durable,
// or published a folded image that fails VerifyChain against a child,
// surfaces here and nowhere else. When compaction is enabled and every
// fold succeeded, the loaded chain must also respect the CompactAfter
// bound — the whole point of paying for server-side folds.
type restorableChecker struct {
	lastAck string
}

func (c *restorableChecker) Name() string { return "chain-restorable" }

func (c *restorableChecker) Event(ev cluster.Event) {
	if ev.Kind == cluster.EvAck {
		c.lastAck = ev.Object
	}
}

func (c *restorableChecker) Finish(a *Audit) []Violation {
	if c.lastAck == "" || a.Target == nil {
		return nil
	}
	chain, err := checkpoint.LoadChain(a.Target, nil, c.lastAck)
	if err != nil {
		return []Violation{{c.Name(), fmt.Sprintf("acked leaf %s does not load a restorable chain: %v", c.lastAck, err)}}
	}
	if k := a.Spec.CompactAfter; k > 0 && a.C.Counters.Get("compact.failed") == 0 {
		if deltas := len(chain) - 1; deltas > k {
			return []Violation{{c.Name(), fmt.Sprintf(
				"chain from %s replays %d deltas despite CompactAfter=%d and no failed folds", c.lastAck, deltas, k)}}
		}
	}
	return nil
}

// --- restored state digest matches the reference ---

// digestChecker compares the completed job's result fingerprint against
// an undisturbed single-node run of the same workload: every restore
// along the way must have reconstructed the exact pre-failure process
// state for the digests to agree.
type digestChecker struct{}

func (digestChecker) Name() string           { return "state-digest" }
func (digestChecker) Event(ev cluster.Event) {}
func (c digestChecker) Finish(a *Audit) []Violation {
	if !a.Sup.Completed {
		return nil // liveness is a separate invariant
	}
	if a.Sup.Fingerprint != a.Want {
		return []Violation{{c.Name(), fmt.Sprintf(
			"fingerprint %#x != reference %#x after %d restart(s)", a.Sup.Fingerprint, a.Want, a.Sup.Restarts)}}
	}
	return nil
}

// --- no oracle reads on the decision path ---

// oracleChecker asserts the autonomic supervisor consulted nothing a
// real distributed system could not observe.
type oracleChecker struct{}

func (oracleChecker) Name() string           { return "no-oracle" }
func (oracleChecker) Event(ev cluster.Event) {}
func (c oracleChecker) Finish(a *Audit) []Violation {
	if n := a.Sup.OracleReads; n != 0 {
		return []Violation{{c.Name(), fmt.Sprintf("supervisor read simulator ground truth %d time(s)", n)}}
	}
	return nil
}

// --- bounded-fault liveness ---

// livenessChecker demands the job finish once the discrete faults stop:
// the executor keeps relaunching the supervisor until the budget
// (quiesce + drain) runs out, so an incomplete job means recovery wedged
// rather than merely lost the race.
type livenessChecker struct{}

func (livenessChecker) Name() string           { return "liveness" }
func (livenessChecker) Event(ev cluster.Event) {}
func (c livenessChecker) Finish(a *Audit) []Violation {
	if a.Sup.Completed {
		return nil
	}
	detail := fmt.Sprintf("job incomplete at budget %v (quiesce %v, ckpts=%d restarts=%d scratch=%d)",
		a.Spec.Budget, a.Spec.Quiesce, a.Sup.Checkpoints, a.Sup.Restarts, a.Sup.FromScratch)
	if a.Aborted != nil {
		detail += fmt.Sprintf("; supervisor aborted: %v", a.Aborted)
	}
	return []Violation{{c.Name(), detail}}
}
