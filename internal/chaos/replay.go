package chaos

// Replay re-executes a scenario from its printed reproducer line. With
// an empty spec the scenario is regenerated from the seed (the unshrunk
// original); otherwise the JSON spec — usually the shrinker's minimal
// reproducer — is parsed and the seed pins its master RNG seed. The
// returned Result carries the violations, so a regression test is one
// call plus an assertion:
//
//	r, err := chaos.Replay(1729, `{"seed":1729,...}`)
//	if err != nil || r.Violated("double-commit") { t.Fatal(...) }
func Replay(seed int64, specJSON string) (*Result, error) {
	var sp *Spec
	if specJSON == "" {
		sp = Generate(seed)
	} else {
		var err error
		sp, err = ParseSpec(specJSON)
		if err != nil {
			return nil, err
		}
		sp.Seed = seed
	}
	return Run(sp), nil
}

// Confirm runs the spec twice and reports whether the two runs were
// byte-identical (equal digests). A violation that fails to confirm is
// a nondeterminism bug in the simulator — a worse finding than the
// violation itself, and reported as such by the harness.
func Confirm(sp *Spec) (deterministic bool, first, second *Result) {
	first = Run(sp.Clone())
	second = Run(sp.Clone())
	return first.Digest == second.Digest, first, second
}
