// Package chaos is a FoundationDB-style deterministic simulation-testing
// harness over the cluster: a single int64 seed drives a generator that
// composes a random topology, workload, checkpoint policy, and fault
// schedule (storage faults, network loss/jitter/duplication/partitions,
// transient and permanent node failures, detector choice); an executor
// runs the autonomic supervisor over the scenario while a registry of
// invariant checkers observes every orchestration event. On a violation
// the harness re-runs the same seed to confirm determinism, then greedily
// shrinks the scenario to a minimal reproducer whose chaos.Replay line is
// a copy-pasteable regression test. Nothing here reads the wall clock or
// an unseeded RNG: a seed is a complete description of a run.
package chaos

import (
	"encoding/json"
	"fmt"

	"repro/internal/cluster"
	"repro/internal/policy"
	"repro/internal/simtime"
)

// FailEvent schedules one node failure.
type FailEvent struct {
	// At is when the node goes down.
	At simtime.Duration `json:"at"`
	// Node is the victim (a worker; the observer never fails).
	Node int `json:"node"`
	// Permanent marks a machine replacement (no reboot, disk wiped when
	// it would come back); transient failures reboot after Repair.
	Permanent bool `json:"perm,omitempty"`
	// Repair is the reboot delay for transient failures.
	Repair simtime.Duration `json:"repair,omitempty"`
}

// PartitionEvent schedules one named network partition.
type PartitionEvent struct {
	// At opens the cut, Heal closes it.
	At   simtime.Duration `json:"at"`
	Heal simtime.Duration `json:"heal"`
	// Side is the node set cut off from the rest of the cluster.
	Side []int `json:"side"`
}

// StorageSpec tunes probabilistic storage fault injection (see
// storage.FaultPolicy for field semantics).
type StorageSpec struct {
	WriteFault   float64 `json:"write,omitempty"`
	OutageFrac   float64 `json:"outage,omitempty"`
	SilentTear   float64 `json:"tear,omitempty"`
	PublishFault float64 `json:"publish,omitempty"`
}

// Spec is one complete chaos scenario. It is what the generator emits,
// what the executor runs, what the shrinker minimizes, and what Replay
// parses — the JSON encoding is the exchange format for reproducers.
type Spec struct {
	// Seed is the master seed: cluster, kernel, and fault-policy RNGs all
	// derive from it, so equal specs produce byte-identical runs.
	Seed int64 `json:"seed"`
	// Nodes is the total machine count; the observer (control plane) is
	// always the highest-numbered node and the job starts on node 0.
	Nodes int `json:"nodes"`

	// Workload: a Sparse program of MiB with the given write fraction.
	MiB        int     `json:"mib"`
	WriteFrac  float64 `json:"wf"`
	WorkSeed   int64   `json:"wseed"`
	Iterations uint64  `json:"iters"`

	// Checkpoint policy. Cadence is the base checkpoint interval (the
	// JSON key stays "interval" so replay lines predating the policy
	// engine parse unchanged). Incremental ships tracker-driven delta
	// chains with a full rebase every RebaseEvery checkpoints; absent
	// (the zero value, and the default for replay lines predating
	// chains) every checkpoint is a full image.
	Cadence     simtime.Duration `json:"interval"`
	Incremental bool             `json:"incr,omitempty"`
	RebaseEvery int              `json:"rebase,omitempty"`

	// Policy selects the cadence strategy fed to the policy engine:
	// "" or "fixed" checkpoints every Cadence; "youngdaly" recomputes
	// the Young/Daly optimum from the online MTBF estimate and measured
	// capture cost; "adaptive" is the legacy per-tick Young consult.
	// Empty is the default for replay lines predating the engine.
	Policy string `json:"policy,omitempty"`
	// Liveness switches delta content to live pages only (Incremental
	// seeds only): pages overwritten before ever being read are withheld
	// from the chains. False is the default for replay lines predating
	// liveness tracking; the digest checker then proves live-content
	// restores remain byte-identical to the fault-free oracle.
	Liveness bool `json:"live,omitempty"`

	// Detector is one of "timeout-1ms", "timeout-2ms", "timeout-3ms",
	// "phi-4", "phi-8", "phi-12"; HBPeriod is the heartbeat period.
	Detector string           `json:"detector"`
	HBPeriod simtime.Duration `json:"hb"`

	// Network faults.
	Loss   float64          `json:"loss,omitempty"`
	Dup    float64          `json:"dup,omitempty"`
	Jitter simtime.Duration `json:"jitter,omitempty"`

	// Storage faults.
	Storage StorageSpec `json:"storage,omitempty"`

	// Fault schedule. All discrete faults land before Quiesce; the
	// liveness invariant demands completion within Budget of start.
	Failures   []FailEvent      `json:"failures,omitempty"`
	Partitions []PartitionEvent `json:"partitions,omitempty"`
	Quiesce    simtime.Duration `json:"quiesce"`
	Budget     simtime.Duration `json:"budget"`

	// NoFencing disables epoch fencing — the deliberately-broken-build
	// knob the double-commit checker must catch.
	NoFencing bool `json:"nofence,omitempty"`

	// Pipeline, when positive, runs the agents' pipelined shipping path
	// with that many capture workers (fixed small values — 1, 2, 4 — so
	// runs never depend on the host's core count). Zero keeps the
	// synchronous path, and the default for replay lines predating the
	// pipeline.
	Pipeline int `json:"pipeline,omitempty"`

	// CompactAfter, when positive (Incremental seeds only), makes the
	// supervisor fold chains longer than that many deltas into a fresh
	// full image on the server and retire the folded deltas — the
	// storage-side chain bound the chain-restorable checker exercises.
	// Zero disables, and is the default for replay lines predating
	// compaction.
	CompactAfter int `json:"compact,omitempty"`

	// Replication selects checkpoint replica placement: "buddy" mirrors
	// every image to the owner's disk, a buddy node's disk, and the
	// server; "erasure" cuts it into DataShards+ParityShards shards
	// across node-local disks (the server holds nothing). Empty keeps
	// the server-only path, and is the default for replay lines
	// predating replication. The repl-durability and repl-converged
	// checkers activate only on replicated seeds.
	Replication string `json:"repl,omitempty"`
	// DataShards/ParityShards is the erasure geometry ("erasure" seeds
	// only; zero uses the cluster defaults of 2+1).
	DataShards   int `json:"rs_k,omitempty"`
	ParityShards int `json:"rs_m,omitempty"`

	// LazyRestore switches failover to the restart-before-read path:
	// only the leaf image is read before the job resumes, the rest
	// materializes on demand. False keeps eager restores, and is the
	// default for replay lines predating lazy restore. The digest
	// checker enforces that the completed run's fingerprint matches the
	// fault-free oracle, so a lazy seed proves byte-equivalence with
	// eager restore at every failover.
	LazyRestore bool `json:"lazy,omitempty"`

	// Shards, when >= 2, routes failure detection through the sharded
	// digest path: workers heartbeat to per-shard aggregator nodes and
	// the observer ingests one digest per shard per period
	// (detector.ShardMonitor), with observer-driven aggregator failover,
	// instead of one heartbeat per worker per period. Zero keeps the
	// flat Monitor, and is the default for replay lines predating
	// digests.
	Shards int `json:"shards,omitempty"`
}

// pipelineConfig translates the Pipeline knob into the supervisor's
// config (nil = synchronous shipping).
func (sp *Spec) pipelineConfig() *cluster.PipelineConfig {
	if sp.Pipeline <= 0 {
		return nil
	}
	return &cluster.PipelineConfig{CaptureWorkers: sp.Pipeline}
}

// replicationConfig translates the Replication knobs into the
// supervisor's placement policy (nil = server-only shipping).
func (sp *Spec) replicationConfig() *cluster.ReplicationConfig {
	switch sp.Replication {
	case "buddy":
		return &cluster.ReplicationConfig{Mode: cluster.ReplBuddy}
	case "erasure":
		return &cluster.ReplicationConfig{
			Mode: cluster.ReplErasure, DataShards: sp.DataShards, ParityShards: sp.ParityShards,
		}
	}
	return nil
}

// policySpec translates the Cadence/Policy/Liveness knobs into the
// supervisor's policy.Spec.
func (sp *Spec) policySpec() policy.Spec {
	var pol policy.Spec
	switch sp.Policy {
	case "youngdaly":
		pol = policy.YoungDaly(sp.Cadence)
	case "adaptive":
		pol = policy.AdaptiveYoung(0)
		pol.Interval = sp.Cadence
	default:
		pol = policy.Fixed(sp.Cadence)
	}
	if sp.Liveness {
		pol.Content = policy.ContentLive
	}
	return pol
}

// observer returns the control-plane node index.
func (sp *Spec) observer() int { return sp.Nodes - 1 }

// workers returns the worker count (every node but the observer).
func (sp *Spec) workers() int { return sp.Nodes - 1 }

// Workers exposes the worker count to external sweep drivers (crsurvey
// forcing replication needs it to judge erasure eligibility).
func (sp *Spec) Workers() int { return sp.workers() }

// Size is the shrinker's cost metric: fewer faults, fewer nodes, a
// shorter workload, and a tighter schedule all count as smaller.
func (sp *Spec) Size() int {
	n := sp.Nodes + len(sp.Failures) + len(sp.Partitions) + int(sp.Iterations) +
		int(sp.Quiesce/simtime.Millisecond)
	if sp.Loss > 0 || sp.Dup > 0 || sp.Jitter > 0 {
		n++
	}
	if sp.Storage != (StorageSpec{}) {
		n++
	}
	if sp.Replication != "" {
		n++
	}
	if sp.Shards != 0 {
		n++
	}
	if sp.LazyRestore {
		n++
	}
	if sp.Policy != "" && sp.Policy != "fixed" {
		n++
	}
	if sp.Liveness {
		n++
	}
	return n
}

// Clone returns a deep copy of the spec.
func (sp *Spec) Clone() *Spec {
	cp := *sp
	cp.Failures = append([]FailEvent(nil), sp.Failures...)
	cp.Partitions = make([]PartitionEvent, len(sp.Partitions))
	for i, p := range sp.Partitions {
		cp.Partitions[i] = p
		cp.Partitions[i].Side = append([]int(nil), p.Side...)
	}
	return &cp
}

// MarshalLine renders the spec as one-line JSON (the Replay argument).
func (sp *Spec) MarshalLine() string {
	b, err := json.Marshal(sp)
	if err != nil {
		// Spec holds only scalars and slices of scalars; Marshal cannot
		// fail on it short of memory corruption.
		panic(err)
	}
	return string(b)
}

// ParseSpec parses a MarshalLine encoding.
func ParseSpec(line string) (*Spec, error) {
	sp := &Spec{}
	if err := json.Unmarshal([]byte(line), sp); err != nil {
		return nil, fmt.Errorf("chaos: bad spec: %w", err)
	}
	if err := sp.validate(); err != nil {
		return nil, err
	}
	return sp, nil
}

// validate rejects specs the executor cannot run safely.
func (sp *Spec) validate() error {
	if sp.Nodes < 3 {
		return fmt.Errorf("chaos: need >= 3 nodes (1 observer + 2 workers), got %d", sp.Nodes)
	}
	if sp.Iterations == 0 || sp.MiB <= 0 {
		return fmt.Errorf("chaos: empty workload")
	}
	if sp.Cadence <= 0 || sp.HBPeriod <= 0 {
		return fmt.Errorf("chaos: interval and heartbeat period must be positive")
	}
	switch sp.Policy {
	case "", "fixed", "youngdaly", "adaptive":
	default:
		return fmt.Errorf("chaos: unknown cadence policy %q", sp.Policy)
	}
	if sp.Liveness && !sp.Incremental {
		return fmt.Errorf("chaos: liveness content needs incremental chains")
	}
	if sp.Budget <= sp.Quiesce {
		return fmt.Errorf("chaos: budget %v must exceed quiesce %v", sp.Budget, sp.Quiesce)
	}
	for _, f := range sp.Failures {
		if f.Node < 0 || f.Node >= sp.workers() {
			return fmt.Errorf("chaos: failure targets node %d outside workers [0,%d)", f.Node, sp.workers())
		}
	}
	for _, p := range sp.Partitions {
		if p.Heal <= p.At {
			return fmt.Errorf("chaos: partition at %v never heals", p.At)
		}
		for _, n := range p.Side {
			if n < 0 || n >= sp.workers() {
				return fmt.Errorf("chaos: partition side includes node %d outside workers [0,%d)", n, sp.workers())
			}
		}
	}
	switch sp.Replication {
	case "", "buddy", "erasure":
	default:
		return fmt.Errorf("chaos: unknown replication mode %q", sp.Replication)
	}
	if sp.Replication != "erasure" && (sp.DataShards != 0 || sp.ParityShards != 0) {
		return fmt.Errorf("chaos: shard geometry %d+%d needs replication mode %q", sp.DataShards, sp.ParityShards, "erasure")
	}
	if sp.Replication == "erasure" {
		k, m := sp.DataShards, sp.ParityShards
		if k == 0 {
			k = 2
		}
		if m == 0 {
			m = 1
		}
		if k+m > sp.workers() {
			return fmt.Errorf("chaos: erasure geometry %d+%d needs %d workers, have %d", k, m, k+m, sp.workers())
		}
	}
	if sp.Shards != 0 && (sp.Shards < 2 || sp.Shards > sp.workers()) {
		return fmt.Errorf("chaos: detector shards %d outside [2,%d]", sp.Shards, sp.workers())
	}
	return nil
}

// ReplayLine renders the Go call that reproduces this scenario — the
// line the harness prints for a shrunken violation, pasteable into a
// regression test.
func (sp *Spec) ReplayLine() string {
	return fmt.Sprintf("chaos.Replay(%d, %q)", sp.Seed, sp.MarshalLine())
}

// detectorNames is the generator's detector palette.
var detectorNames = []string{"timeout-1ms", "timeout-2ms", "timeout-3ms", "phi-4", "phi-8", "phi-12"}
