package chaos

import (
	"strings"
	"testing"
)

// TestLazyGeneratedMix pins that the generator actually draws the lazy
// restart-before-read path across the tier-1 sweep width — the sweep
// exercises demand faults and the prefetcher only if lazy seeds exist in
// it, and the digest checker's lazy-vs-eager equivalence proof only runs
// on them.
func TestLazyGeneratedMix(t *testing.T) {
	lazy := 0
	for seed := int64(1); seed <= sweepSeeds; seed++ {
		if Generate(seed).LazyRestore {
			lazy++
		}
	}
	if lazy == 0 {
		t.Fatalf("generator drew no lazy seeds in [1,%d]", sweepSeeds)
	}
	t.Logf("lazy seeds: %d of %d", lazy, sweepSeeds)
}

// TestLazyForcedSweep forces the restart-before-read failover onto every
// generated scenario and demands the full invariant catalog stay silent.
// The digest checker turns each completed seed into an equivalence
// proof: a failover that materialized memory lazily must leave the same
// fingerprint an eager replay of the same schedule leaves.
func TestLazyForcedSweep(t *testing.T) {
	ran, engaged := 0, 0
	for seed := int64(1); seed <= 120; seed++ {
		sp := Generate(seed)
		sp.LazyRestore = true
		ran++
		r := Run(sp)
		if len(r.Violations) > 0 {
			t.Errorf("seed %d: %s", seed, r.Summary())
			for _, v := range r.Violations {
				t.Errorf("  %s", v)
			}
			t.Errorf("  reproduce: %s", r.Spec.ReplayLine())
		}
		if strings.Contains(r.Counters, "restore.lazy") {
			engaged++
		}
	}
	if engaged == 0 {
		t.Fatalf("no seed in [1,%d] ever took the lazy restore path", ran)
	}
	t.Logf("lazy sweep covered %d seeds, %d with at least one lazy restore", ran, engaged)
}

// TestLazyRunDeterministic double-runs lazy scenarios and requires equal
// digests: demand-fault ordering, prefetch batching, and session
// settling must all be schedule-stable.
func TestLazyRunDeterministic(t *testing.T) {
	for _, seed := range []int64{1, 5, 9, 13} {
		sp := Generate(seed)
		sp.LazyRestore = true
		if ok, a, b := Confirm(sp); !ok {
			t.Fatalf("lazy seed %d nondeterministic: %#x vs %#x", seed, a.Digest, b.Digest)
		}
	}
}
