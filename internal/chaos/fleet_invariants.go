// Fleet-scale invariant auditing. The chaos Checker catalog is built
// around the full cluster simulation (*cluster.Supervisor, workload
// fingerprints); the fleet-scale scenario harness has the same core
// safety obligations but different evidence: an orchestration event
// log, merged counters, and a namespaced object-read path. This adapter
// re-states the transferable invariants — no double commit past a
// fence, acked checkpoints durable until retired, shard-local GC never
// crossing a namespace — over that evidence, so the scenario suite and
// the chaos suite agree on what "broken" means.

package chaos

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/trace"
)

// FleetAudit is the end-of-run evidence of a fleet-scale run.
type FleetAudit struct {
	// Events is the root's merged orchestration log.
	Events []cluster.Event
	// Counters is the merged counter snapshot.
	Counters *trace.Counters
	// ReadObject resolves a shard-namespaced object name.
	ReadObject func(name string) ([]byte, error)
}

// FleetViolations audits a fleet run. An empty result is the pass
// criterion every scenario enforces.
func FleetViolations(a *FleetAudit) []Violation {
	var out []Violation

	var stale []cluster.Event
	var acked []string
	seen := make(map[string]bool)
	retired := make(map[string]bool)
	for _, ev := range a.Events {
		switch ev.Kind {
		case cluster.EvStaleCommit:
			stale = append(stale, ev)
		case cluster.EvAck:
			if !seen[ev.Object] {
				seen[ev.Object] = true
				acked = append(acked, ev.Object)
			}
		case cluster.EvRetire:
			retired[ev.Object] = true
		}
	}

	// Same invariant as doubleCommitChecker: a superseded incarnation's
	// publish must never land.
	if n := a.Counters.Get("fence.double_commits"); len(stale) > 0 || n > 0 {
		first := ""
		if len(stale) > 0 {
			first = " first: " + stale[0].String()
		}
		out = append(out, Violation{Invariant: "double-commit", Detail: fmt.Sprintf(
			"%d stale-epoch publishes landed (fence.double_commits=%d)%s", len(stale), n, first)})
	}

	// A writer holding the CURRENT epoch must never be rejected: that
	// would mean an epoch advance raced its re-admission.
	if n := a.Counters.Get("fence.unexpected"); n > 0 {
		out = append(out, Violation{Invariant: "fence-epoch", Detail: fmt.Sprintf(
			"%d current-epoch writes rejected by the fence", n)})
	}

	// Shard-local GC reaching for another shard's namespace is an
	// isolation breach even though the prefix guard refused it.
	if n := a.Counters.Get("fence.gc_foreign"); n > 0 {
		out = append(out, Violation{Invariant: "shard-isolation", Detail: fmt.Sprintf(
			"shard GC attempted %d foreign-namespace delete(s)", n)})
	}

	// Acked-durability over the fleet's chains: every acknowledged
	// checkpoint not legally retired must still be readable.
	for _, name := range acked {
		if retired[name] {
			continue
		}
		data, err := a.ReadObject(name)
		if err != nil {
			out = append(out, Violation{Invariant: "acked-durability", Detail: fmt.Sprintf(
				"acked %s unreadable: %v", name, err)})
		} else if len(data) == 0 {
			out = append(out, Violation{Invariant: "acked-durability", Detail: fmt.Sprintf(
				"acked %s is empty", name)})
		}
	}
	return out
}
