// The named scenario catalog. Every entry is fully declarative — fixed
// seed, fixed fault schedule, fixed criteria — so a failure reproduces
// bit-for-bit from the name alone. Fast scenarios form the `make
// scenarios` CI gate; the fleet-1k / fleet-10k pair is additionally the
// substrate of the E18 scale benchmark, which gates the 1k→10k
// detection-latency ratio.

package scenario

import (
	"repro/internal/cluster"
	"repro/internal/simtime"
)

const ms = simtime.Millisecond

// staggeredFaults fails `count` nodes spread across the node range and
// across a windowMs-wide schedule starting at 25ms (the window must end
// comfortably before the scenario's duration so every fault is applied
// and detected): even picks are permanent, odd ones repair after 40ms.
func staggeredFaults(nodes, count, windowMs int) []Fault {
	fs := make([]Fault, 0, count)
	for i := 0; i < count; i++ {
		f := Fault{
			At:   simtime.Duration(25+i*windowMs/count) * ms,
			Node: (i*nodes)/count + 1,
			Perm: i%2 == 0,
		}
		if !f.Perm {
			f.Repair = 40 * ms
		}
		fs = append(fs, f)
	}
	return fs
}

// Catalog returns every named scenario.
func Catalog() []Scenario {
	return []Scenario{
		{
			// Small clean-network smoke: tight latency ceilings, every
			// criterion engaged.
			Name: "smoke-64",
			Fast: true,
			Config: cluster.FleetConfig{
				Nodes: 64, Shards: 8, Jobs: 16, Seed: 101,
			},
			Faults: []Fault{
				{At: 20 * ms, Node: 5, Perm: true},
				{At: 40 * ms, Node: 33, Perm: true},
				{At: 60 * ms, Node: 50, Repair: 30 * ms},
			},
			Duration: 100 * ms,
			Criteria: Criteria{
				MinEventsPerSec: 500,
				MaxDetectP99Ms:  10,
				MinDetections:   3,
				MinCheckpoints:  50,
				MaxTimers:       8,
			},
		},
		{
			// The digest path through a hostile control-plane network:
			// heartbeat loss, whole-digest loss, duplication, jitter.
			Name: "faulty-net-256",
			Fast: true,
			Config: cluster.FleetConfig{
				Nodes: 256, Shards: 16, Jobs: 64, Seed: 202,
				HBLoss: 0.05, DigestLoss: 0.05, DigestDup: 0.05,
				DigestJitter: 1 * ms,
			},
			Faults:   staggeredFaults(256, 4, 100),
			Duration: 150 * ms,
			Criteria: Criteria{
				MinEventsPerSec: 500,
				MaxDetectP99Ms:  14,
				MinDetections:   4,
				MinCheckpoints:  200,
				MaxTimers:       16,
			},
		},
		{
			// Kill an entire shard: its jobs must evacuate across the
			// shard boundary with their checkpoints.
			Name: "evacuate-128",
			Fast: true,
			Config: cluster.FleetConfig{
				Nodes: 128, Shards: 16, Jobs: 32, Seed: 303,
			},
			Faults: []Fault{
				{At: 30 * ms, Node: 24, Perm: true},
				{At: 30 * ms, Node: 25, Perm: true},
				{At: 30 * ms, Node: 26, Perm: true},
				{At: 30 * ms, Node: 27, Perm: true},
				{At: 30 * ms, Node: 28, Perm: true},
				{At: 30 * ms, Node: 29, Perm: true},
				{At: 30 * ms, Node: 30, Perm: true},
				{At: 30 * ms, Node: 31, Perm: true},
			},
			Duration: 150 * ms,
			Criteria: Criteria{
				MinEventsPerSec:  500,
				MaxDetectP99Ms:   10,
				MaxFailoverP99Ms: 15,
				MinDetections:    8,
				MinMigrations:    1,
				MinCheckpoints:   100,
			},
		},
		{
			// 1k nodes: the smaller anchor of the scale pair.
			Name: "fleet-1k",
			Fast: true,
			Config: cluster.FleetConfig{
				Nodes: 1000, Shards: 32, Jobs: 100, Seed: 1001,
				DigestJitter: 500 * simtime.Microsecond,
			},
			Faults:   staggeredFaults(1000, 10, 250),
			Duration: 300 * ms,
			Criteria: Criteria{
				MinEventsPerSec:  2000,
				MaxDetectP99Ms:   12,
				MaxFailoverP99Ms: 16,
				MinDetections:    8,
				MinCheckpoints:   1000,
				MaxTimers:        32,
			},
		},
		{
			// 10k nodes: the headline scale target. Same tick, same
			// detector bound as fleet-1k — the architecture's claim is
			// that detection latency does not grow with fleet size, and
			// E18 gates the 1k→10k ratio.
			Name: "fleet-10k",
			Fast: false,
			Config: cluster.FleetConfig{
				Nodes: 10000, Shards: 64, Jobs: 1000, Seed: 10001,
				DigestJitter: 500 * simtime.Microsecond,
			},
			Faults:   staggeredFaults(10000, 20, 250),
			Duration: 300 * ms,
			Criteria: Criteria{
				MinEventsPerSec:  2000,
				MaxDetectP99Ms:   12,
				MaxFailoverP99Ms: 16,
				MinDetections:    15,
				MinCheckpoints:   10000,
				MaxTimers:        64,
			},
		},
		{
			// Restart-before-read failover across a mid-sized fleet: every
			// restore takes the lazy path, and the floor proves the path
			// actually fired under the same fault pressure as smoke-64.
			Name: "lazy-restore-128",
			Fast: true,
			Config: cluster.FleetConfig{
				Nodes: 128, Shards: 16, Jobs: 32, Seed: 404,
				LazyRestore: true,
			},
			Faults:   staggeredFaults(128, 6, 100),
			Duration: 150 * ms,
			Criteria: Criteria{
				MinEventsPerSec: 500,
				MaxDetectP99Ms:  10,
				MinDetections:   6,
				MinCheckpoints:  100,
				MinLazyRestores: 1,
				MaxTimers:       16,
			},
		},
		{
			// Broken-build contrast: fencing disabled under a network
			// lossy enough to force false suspicions. The harness passes
			// only if the double-commit invariant FIRES — this is the
			// scenario that proves the suite can catch a broken build.
			Name: "broken-fencing-8",
			Fast: true,
			Config: cluster.FleetConfig{
				Nodes: 8, Shards: 2, Jobs: 8, Seed: 9,
				DigestLoss: 0.45, DetectAfter: 2 * ms,
				NoFencing: true,
			},
			Duration: 300 * ms,
			Criteria: Criteria{
				ExpectViolations: []string{"double-commit"},
			},
		},
	}
}

// Fast returns the CI-gate subset.
func Fast() []Scenario {
	var out []Scenario
	for _, sc := range Catalog() {
		if sc.Fast {
			out = append(out, sc)
		}
	}
	return out
}

// Find returns the named scenario.
func Find(name string) (Scenario, bool) {
	for _, sc := range Catalog() {
		if sc.Name == name {
			return sc, true
		}
	}
	return Scenario{}, false
}
