// Package scenario is the declarative performance-scenario suite for
// the fleet-scale control plane: a named scenario pins a topology
// (nodes, shards, jobs), a fault schedule, a duration on the simulated
// clock, and machine-checkable ValidationCriteria — orchestration
// events/sec floor, detection-latency and failover-p99 ceilings, and
// zero invariant violations via the chaos package's fleet audit. The
// suite is the scale regression gate: `make scenarios` runs the fast
// subset in CI, and the E18 benchmark runs the 1k/10k scenarios and
// compares them.
//
// This package sits in the measurement harness layer, outside the
// simulation: the events/sec criterion is wall-clock throughput of the
// real orchestration code, which is exactly why it is measured here and
// nowhere inside internal/cluster (which stays wall-clock free and
// deterministic).
package scenario

import (
	"fmt"
	"time"

	"repro/internal/chaos"
	"repro/internal/cluster"
	"repro/internal/simtime"
)

// Fault is one scheduled ground-truth node failure.
type Fault struct {
	At     simtime.Duration `json:"at"`
	Node   int              `json:"node"`
	Perm   bool             `json:"perm"`
	Repair simtime.Duration `json:"repair,omitempty"`
}

// Criteria is a scenario's pass/fail contract. Zero-valued fields are
// not enforced; invariant violations always fail a scenario unless they
// are explicitly expected (the broken-build scenarios).
type Criteria struct {
	// MinEventsPerSec is the wall-clock orchestration throughput floor.
	// Floors are set far below healthy throughput so the criterion
	// catches collapses (an accidental O(n²) or a serialized event loop),
	// not machine-speed variance.
	MinEventsPerSec float64 `json:"min_events_per_sec,omitempty"`
	// MaxDetectP99Ms / MaxFailoverP99Ms are ceilings on the simulated
	// detection and failover latency tails — deterministic, so they can
	// be tight.
	MaxDetectP99Ms   float64 `json:"max_detect_p99_ms,omitempty"`
	MaxFailoverP99Ms float64 `json:"max_failover_p99_ms,omitempty"`
	// Workload sanity floors: a scenario that detected/checkpointed/
	// migrated nothing exercised nothing.
	MinDetections  int   `json:"min_detections,omitempty"`
	MinCheckpoints int64 `json:"min_checkpoints,omitempty"`
	MinMigrations  int64 `json:"min_migrations,omitempty"`
	// MaxTimers bounds the armed recurring-timer count (the per-shard
	// digest-tick amortization: shards, not nodes).
	MaxTimers int `json:"max_timers,omitempty"`
	// MinLazyRestores is a floor on fleet.lazy_restores — a scenario
	// with FleetConfig.LazyRestore that restores nothing through the
	// restart-before-read path exercised nothing.
	MinLazyRestores int64 `json:"min_lazy_restores,omitempty"`
	// ExpectViolations lists invariants that MUST fire (broken-build
	// scenarios such as fencing disabled). Any unlisted violation, or a
	// listed one that fails to fire, fails the scenario.
	ExpectViolations []string `json:"expect_violations,omitempty"`
}

// Scenario is one named, self-contained validation run.
type Scenario struct {
	Name string `json:"name"`
	// Fast marks membership in the `make scenarios` CI subset.
	Fast     bool                `json:"fast"`
	Config   cluster.FleetConfig `json:"-"`
	Faults   []Fault             `json:"faults,omitempty"`
	Duration simtime.Duration    `json:"duration"`
	Criteria Criteria            `json:"criteria"`
}

// Result is the outcome of one scenario run.
type Result struct {
	Name         string             `json:"name"`
	Pass         bool               `json:"pass"`
	Failures     []string           `json:"failures,omitempty"`
	Violations   []chaos.Violation  `json:"violations,omitempty"`
	EventsPerSec float64            `json:"events_per_sec"`
	WallMillis   float64            `json:"wall_ms"`
	Stats        cluster.FleetStats `json:"stats"`
}

func (r Result) String() string {
	verdict := "PASS"
	if !r.Pass {
		verdict = "FAIL " + fmt.Sprint(r.Failures)
	}
	return fmt.Sprintf("%-24s %s  %.0f events/s, detect p99 %.2f ms, failover p99 %.2f ms (%.0f ms wall)",
		r.Name, verdict, r.EventsPerSec, r.Stats.DetectP99, r.Stats.FailoverP99, r.WallMillis)
}

// Run executes one scenario and judges it against its criteria.
func Run(sc Scenario) Result {
	res := Result{Name: sc.Name}
	fail := func(format string, args ...any) {
		res.Failures = append(res.Failures, fmt.Sprintf(format, args...))
	}

	r, err := cluster.NewRootSupervisor(sc.Config)
	if err != nil {
		fail("config: %v", err)
		return res
	}
	for _, f := range sc.Faults {
		if err := r.FailAt(f.At, f.Node, f.Perm, f.Repair); err != nil {
			fail("fault schedule: %v", err)
			return res
		}
	}

	start := time.Now()
	res.Stats = r.Run(sc.Duration)
	wall := time.Since(start)
	res.WallMillis = float64(wall.Microseconds()) / 1000
	if wall > 0 {
		res.EventsPerSec = float64(res.Stats.Events) / wall.Seconds()
	}

	res.Violations = chaos.FleetViolations(&chaos.FleetAudit{
		Events:     r.Events,
		Counters:   r.Counters(),
		ReadObject: r.ReadObject,
	})

	c := sc.Criteria
	expected := make(map[string]bool, len(c.ExpectViolations))
	for _, name := range c.ExpectViolations {
		expected[name] = true
	}
	fired := make(map[string]bool)
	for _, v := range res.Violations {
		fired[v.Invariant] = true
		if !expected[v.Invariant] {
			fail("invariant violated: %s", v)
		}
	}
	for _, name := range c.ExpectViolations {
		if !fired[name] {
			fail("expected invariant %q did not fire", name)
		}
	}

	if c.MinEventsPerSec > 0 && res.EventsPerSec < c.MinEventsPerSec {
		fail("events/sec %.0f below floor %.0f", res.EventsPerSec, c.MinEventsPerSec)
	}
	if c.MaxDetectP99Ms > 0 && res.Stats.DetectP99 > c.MaxDetectP99Ms {
		fail("detect p99 %.2f ms above ceiling %.2f ms", res.Stats.DetectP99, c.MaxDetectP99Ms)
	}
	if c.MaxFailoverP99Ms > 0 && res.Stats.FailoverP99 > c.MaxFailoverP99Ms {
		fail("failover p99 %.2f ms above ceiling %.2f ms", res.Stats.FailoverP99, c.MaxFailoverP99Ms)
	}
	if res.Stats.Detections < c.MinDetections {
		fail("detections %d below floor %d", res.Stats.Detections, c.MinDetections)
	}
	if res.Stats.Checkpoints < c.MinCheckpoints {
		fail("checkpoints %d below floor %d", res.Stats.Checkpoints, c.MinCheckpoints)
	}
	if res.Stats.Migrations < c.MinMigrations {
		fail("migrations %d below floor %d", res.Stats.Migrations, c.MinMigrations)
	}
	if c.MaxTimers > 0 && res.Stats.Timers > c.MaxTimers {
		fail("armed timers %d above bound %d", res.Stats.Timers, c.MaxTimers)
	}
	if lazy := r.Counters().Get("fleet.lazy_restores"); lazy < c.MinLazyRestores {
		fail("lazy restores %d below floor %d", lazy, c.MinLazyRestores)
	}

	res.Pass = len(res.Failures) == 0
	return res
}

// RunAll executes scenarios in order and returns their results.
func RunAll(scs []Scenario) []Result {
	out := make([]Result, 0, len(scs))
	for _, sc := range scs {
		out = append(out, Run(sc))
	}
	return out
}

// Passed reports whether every result passed.
func Passed(results []Result) bool {
	for _, r := range results {
		if !r.Pass {
			return false
		}
	}
	return true
}
