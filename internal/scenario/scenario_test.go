package scenario

import (
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/simtime"
)

func TestCatalogIsWellFormed(t *testing.T) {
	seen := make(map[string]bool)
	for _, sc := range Catalog() {
		if sc.Name == "" {
			t.Fatal("unnamed scenario")
		}
		if seen[sc.Name] {
			t.Fatalf("duplicate scenario name %q", sc.Name)
		}
		seen[sc.Name] = true
		if sc.Duration <= 0 {
			t.Fatalf("%s: no duration", sc.Name)
		}
		if sc.Config.Seed == 0 {
			t.Fatalf("%s: no pinned seed", sc.Name)
		}
	}
	if len(Fast()) == 0 {
		t.Fatal("no fast scenarios")
	}
	if _, ok := Find("fleet-10k"); !ok {
		t.Fatal("fleet-10k missing from catalog")
	}
	if _, ok := Find("no-such"); ok {
		t.Fatal("Find invented a scenario")
	}
}

// The CI gate: every fast scenario passes its own criteria.
func TestFastScenariosPass(t *testing.T) {
	for _, sc := range Fast() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			res := Run(sc)
			t.Log(res)
			if !res.Pass {
				t.Fatalf("scenario failed: %v\nviolations: %v\nstats: %s",
					res.Failures, res.Violations, res.Stats)
			}
		})
	}
}

// The acceptance headline: the 10k-node scenario completes with every
// criterion passing.
func TestFleet10kScenarioPasses(t *testing.T) {
	if testing.Short() {
		t.Skip("10k fleet scenario skipped in -short")
	}
	sc, ok := Find("fleet-10k")
	if !ok {
		t.Fatal("fleet-10k not in catalog")
	}
	res := Run(sc)
	t.Log(res)
	if !res.Pass {
		t.Fatalf("fleet-10k failed: %v\nviolations: %v\nstats: %s",
			res.Failures, res.Violations, res.Stats)
	}
	if res.Stats.Timers != 64 {
		t.Fatalf("10k nodes armed %d timers, want 64 (one per shard)", res.Stats.Timers)
	}
}

// The harness must detect criteria failures, not just run scenarios: an
// impossible floor fails with a legible reason.
func TestCriteriaFailureIsReported(t *testing.T) {
	sc, _ := Find("smoke-64")
	sc.Criteria.MinCheckpoints = 1 << 40
	res := Run(sc)
	if res.Pass {
		t.Fatal("impossible checkpoint floor passed")
	}
	found := false
	for _, f := range res.Failures {
		if strings.Contains(f, "checkpoints") {
			found = true
		}
	}
	if !found {
		t.Fatalf("failure reasons missing the failed criterion: %v", res.Failures)
	}
}

// A broken build (fencing disabled) must be caught by the invariant
// audit; the catalog's contrast scenario asserts the violation fires.
func TestBrokenFencingScenarioCatchesDoubleCommit(t *testing.T) {
	sc, ok := Find("broken-fencing-8")
	if !ok {
		t.Fatal("broken-fencing-8 not in catalog")
	}
	res := Run(sc)
	t.Log(res)
	if !res.Pass {
		t.Fatalf("contrast scenario failed: %v", res.Failures)
	}
	if len(res.Violations) == 0 {
		t.Fatal("no violations recorded despite NoFencing")
	}
	// And the same config with an empty expectation must FAIL — a
	// violated invariant can never silently pass.
	sc.Criteria.ExpectViolations = nil
	if res := Run(sc); res.Pass {
		t.Fatal("double-commit violation did not fail the scenario")
	}
}

// An invalid config fails the scenario instead of panicking.
func TestInvalidConfigFailsGracefully(t *testing.T) {
	res := Run(Scenario{
		Name:     "bad",
		Config:   cluster.FleetConfig{Nodes: 1, Shards: 1},
		Duration: 10 * simtime.Millisecond,
	})
	if res.Pass || len(res.Failures) == 0 {
		t.Fatal("invalid config did not fail")
	}
}
