package repro

import (
	"repro/internal/checkpoint"
	"repro/internal/cluster"
	"repro/internal/costmodel"
	"repro/internal/hardware"
	"repro/internal/mechanism"
	"repro/internal/mpi"
	"repro/internal/policy"
	"repro/internal/simos/kernel"
	"repro/internal/simos/proc"
	"repro/internal/simtime"
	"repro/internal/storage"
	"repro/internal/syslevel"
	"repro/internal/taxonomy"
	"repro/internal/userlevel"
	"repro/internal/workload"
)

// Core simulated-OS types.
type (
	// Kernel is one simulated machine.
	Kernel = kernel.Kernel
	// Registry holds simulated executables by name.
	Registry = kernel.Registry
	// Program is simulated executable code (all state in registers and
	// simulated memory; see internal/simos/kernel).
	Program = kernel.Program
	// Context is the syscall/memory interface handed to programs.
	Context = kernel.Context
	// Process is one simulated process.
	Process = proc.Process
	// PID identifies a process.
	PID = proc.PID

	// Duration and Time are simulated-clock units (nanoseconds).
	Duration = simtime.Duration
	// Time is an instant of simulated time.
	Time = simtime.Time

	// CostModel holds the per-operation costs driving all timing.
	CostModel = costmodel.Model
)

// Simulated-time units.
const (
	Microsecond = simtime.Microsecond
	Millisecond = simtime.Millisecond
	Second      = simtime.Second
	Minute      = simtime.Minute
	Hour        = simtime.Hour
)

// Checkpoint/restart core types.
type (
	// Mechanism is one checkpoint/restart implementation (any of the
	// twelve surveyed systems, the user-level schemes, or TICK).
	Mechanism = mechanism.Mechanism
	// Ticket tracks an asynchronous checkpoint request.
	Ticket = mechanism.Ticket
	// Image is one checkpoint of one process.
	Image = checkpoint.Image
	// Features is a mechanism's (extended) Table 1 row.
	Features = taxonomy.Features
	// StorageTarget is a place checkpoints are stored.
	StorageTarget = storage.Target
)

// NewRegistry returns an empty program registry.
func NewRegistry() *Registry { return kernel.NewRegistry() }

// Default2005 returns the reference cost model (2005-era hardware, the
// machines the paper discusses).
func Default2005() *CostModel { return costmodel.Default2005() }

// NewMachine builds a simulated machine with the default configuration
// and cost model.
func NewMachine(hostname string, reg *Registry) *Kernel {
	return kernel.New(kernel.DefaultConfig(hostname), costmodel.Default2005(), reg)
}

// NewLocalDisk returns an always-available local disk target.
func NewLocalDisk(name string) *storage.Local {
	return storage.NewLocal(name, costmodel.Default2005(), nil)
}

// NewCheckpointServer returns a remote checkpoint server and a client for
// it (the paper's "remote" stable storage).
func NewCheckpointServer(name string) (*storage.Server, *storage.Remote) {
	srv := storage.NewServer(name, costmodel.Default2005())
	return srv, storage.NewRemote(name+"-client", srv)
}

// Checkpoint requests a checkpoint of p through m's native initiation
// path and waits for it to complete.
func Checkpoint(m Mechanism, k *Kernel, p *Process, tgt StorageTarget) (*Ticket, error) {
	return mechanism.Checkpoint(m, k, p, tgt, nil)
}

// LoadChain reads the image chain ending at leaf from a storage target,
// verifying its structural integrity.
func LoadChain(tgt StorageTarget, leaf string) ([]*Image, error) {
	return checkpoint.LoadChain(tgt, nil, leaf)
}

// VerifyChain checks a restore chain's structural invariants.
func VerifyChain(chain []*Image) error { return checkpoint.VerifyChain(chain) }

// Coalesce merges a restore chain into one equivalent full image,
// bounding restart latency without losing state.
func Coalesce(chain []*Image) (*Image, error) { return checkpoint.Coalesce(chain) }

// Fingerprint returns a workload's observable result register; two runs
// are equivalent iff their fingerprints match.
func Fingerprint(p *Process) uint64 { return workload.Fingerprint(p) }

// SetIterations bounds a freshly spawned workload.
func SetIterations(p *Process, n uint64) { workload.SetIterations(p, n) }

// --- The surveyed mechanisms (Table 1) ---

// NewVMADump returns the VMADump mechanism [17]: checkpoint system calls
// invoked by the (modified) application on itself.
func NewVMADump(every uint64, tgt StorageTarget) Mechanism { return syslevel.NewVMADump(every, tgt) }

// NewBProc returns the BProc mechanism [18]: VMADump-based process
// migration with no stable storage.
func NewBProc() Mechanism { return syslevel.NewBProc() }

// NewEPCKPT returns the EPCKPT mechanism [26]: a new kernel signal plus
// launch-tool registration.
func NewEPCKPT() Mechanism { return syslevel.NewEPCKPT() }

// NewCRAK returns the CRAK mechanism [40]: a kernel-module kernel thread
// driven through /dev ioctl.
func NewCRAK() Mechanism { return syslevel.NewCRAK() }

// NewUCLiK returns the UCLiK mechanism [13]: CRAK's framework plus
// original-PID restoration and deleted-file recovery, local storage only.
func NewUCLiK() Mechanism { return syslevel.NewUCLiK() }

// NewCHPOX returns the CHPOX mechanism [36]: a kernel module with a
// /proc registration entry and SIGSYS as the checkpoint signal.
func NewCHPOX() Mechanism { return syslevel.NewCHPOX() }

// NewZAP returns the ZAP mechanism [24]: CRAK plus pod virtualization of
// PIDs, sockets and shared memory, for transparent migration.
func NewZAP() Mechanism { return syslevel.NewZAP() }

// NewBLCR returns Berkeley Lab's BLCR [11]: kernel-module kernel thread,
// multithread-capable, with a mandatory user-space init phase.
func NewBLCR() Mechanism { return syslevel.NewBLCR() }

// NewLAMMPI returns the LAM/MPI framework [32]: BLCR per process,
// coordinated by the MPI layer (see NewParallelJob).
func NewLAMMPI() Mechanism { return syslevel.NewLAMMPI() }

// NewPsncRC returns PsncR/C [22]: kernel thread, /proc + ioctl, local
// disk, no data optimization.
func NewPsncRC() Mechanism { return syslevel.NewPsncRC() }

// NewSoftwareSuspend returns swsusp [6]: whole-machine hibernation via a
// kernel freeze signal and a swap image.
func NewSoftwareSuspend() *syslevel.SoftwareSuspend { return syslevel.NewSoftwareSuspend() }

// NewCheckpointFork returns "Checkpoint" [5]: checkpoint system calls
// with fork-based consistency so the application runs on during the save.
func NewCheckpointFork(every uint64, tgt StorageTarget) Mechanism {
	return syslevel.NewCheckpointFork(every, tgt)
}

// NewTICK returns the paper's proposed direction: a Transparent
// Incremental Checkpointer at Kernel level with automatic initiation.
func NewTICK() *syslevel.TICK { return syslevel.NewTICK() }

// --- User-level schemes (§3) ---

// NewLibCkpt returns libckpt-class library checkpointing [27].
func NewLibCkpt(every uint64, tgt StorageTarget, incremental bool) Mechanism {
	return userlevel.NewLibCkpt(every, tgt, incremental)
}

// NewCondorStyle returns Condor-style signal-handler checkpointing [21].
func NewCondorStyle() Mechanism { return userlevel.NewCondorStyle() }

// NewEskyStyle returns Esky-style SIGALRM-timer checkpointing [15].
func NewEskyStyle(interval Duration, tgt StorageTarget) Mechanism {
	return userlevel.NewEskyStyle(interval, tgt)
}

// NewPreloadShim returns LD_PRELOAD interposition checkpointing.
func NewPreloadShim() Mechanism { return userlevel.NewPreloadShim() }

// NewLibTckpt returns libtckpt, the multithreaded user-level scheme [10].
func NewLibTckpt(every uint64, tgt StorageTarget) Mechanism {
	return userlevel.NewLibTckpt(every, tgt)
}

// --- Hardware schemes (§4.2) ---

// NewReVive returns the ReVive directory-logging model [29].
func NewReVive() *hardware.ReVive { return hardware.NewReVive() }

// NewSafetyNet returns the SafetyNet checkpoint-log-buffer model [34]
// with the given CLB capacity in cache lines.
func NewSafetyNet(clbLines int) *hardware.SafetyNet { return hardware.NewSafetyNet(clbLines) }

// --- Workloads ---

// Workload programs spanning the write-density/locality space of [31].
type (
	// Dense rewrites its whole working set every iteration.
	Dense = workload.Dense
	// Sparse writes a pseudo-random fraction of pages per iteration.
	Sparse = workload.Sparse
	// Stencil alternates between two grids (half-arena deltas).
	Stencil = workload.Stencil
	// PointerChase reads widely and writes rarely.
	PointerChase = workload.PointerChase
	// Phased alternates dense and quiet phases.
	Phased = workload.Phased
	// MultiThreaded runs several threads over a shared arena.
	MultiThreaded = workload.MultiThreaded
	// ResourceUser exercises sockets, shared memory, and PID identity.
	ResourceUser = workload.ResourceUser
	// Spin is a pure-CPU background load.
	Spin = workload.Spin
)

// Suite returns the named application profiles modeled after the
// scientific codes of the authors' feasibility study [31]: SAGE, Sweep3D,
// SP, an FFT-class phased code, and an N-body-class tree walker.
func Suite(mib int) []Program { return workload.Suite(mib) }

// --- Cluster fault tolerance (§1) ---

type (
	// Cluster is a set of co-simulated machines with failure injection.
	Cluster = cluster.Cluster
	// ClusterConfig tunes a cluster.
	ClusterConfig = cluster.Config
	// Supervisor runs one job under failures with checkpoint/restart.
	Supervisor = cluster.Supervisor
	// SupervisorConfig configures NewSupervisor.
	SupervisorConfig = cluster.SupervisorConfig
	// PipelineConfig turns on the agents' pipelined shipping path.
	PipelineConfig = cluster.PipelineConfig
	// JobConfig drives the analytic job model.
	JobConfig = cluster.JobConfig
	// JobResult is an analytic run summary.
	JobResult = cluster.JobResult
	// Gang is a coscheduled process set with safe preemption.
	Gang = cluster.Gang
	// GangMember identifies one gang process.
	GangMember = cluster.GangMember

	// PolicySpec is the unified checkpoint policy: cadence strategy
	// (fixed / youngdaly / adaptive) with its parameters plus the delta
	// content policy (all dirty pages, or live pages only).
	PolicySpec = policy.Spec
	// PolicyEngine computes the live cadence from the policy spec, the
	// online MTBF estimate, and measured capture cost.
	PolicyEngine = policy.Engine
)

// NewCluster builds an n-node cluster sharing reg.
func NewCluster(n int, seed int64, reg *Registry) *Cluster {
	return cluster.New(cluster.Config{Nodes: n, Seed: seed, KernelCfg: kernel.DefaultConfig("")},
		costmodel.Default2005(), reg)
}

// NewSupervisor validates cfg, applies defaults (estimator, retry
// policy, rebase cadence, metrics), and returns a ready Supervisor.
func NewSupervisor(cfg SupervisorConfig) (*Supervisor, error) { return cluster.NewSupervisor(cfg) }

// MustNewSupervisor is NewSupervisor that panics on a config error — for
// call sites whose config is statically known valid.
func MustNewSupervisor(cfg SupervisorConfig) *Supervisor { return cluster.MustNewSupervisor(cfg) }

// FixedPolicy checkpoints every interval — the classic configured
// cadence as a policy spec.
func FixedPolicy(interval Duration) PolicySpec { return policy.Fixed(interval) }

// YoungDalyPolicy starts at base and re-derives the Young/Daly optimal
// interval from observed failures and measured capture cost.
func YoungDalyPolicy(base Duration) PolicySpec { return policy.YoungDaly(base) }

// AdaptivePolicy is the legacy per-tick Young consult with base as the
// starting interval and clamp reference.
func AdaptivePolicy(base Duration) PolicySpec {
	sp := policy.AdaptiveYoung(0)
	sp.Interval = base
	return sp
}

// YoungInterval is Young's optimal checkpoint interval √(2δM).
func YoungInterval(ckptCost, mtbf Duration) Duration { return cluster.YoungInterval(ckptCost, mtbf) }

// DalyInterval is Daly's higher-order refinement.
func DalyInterval(ckptCost, mtbf Duration) Duration { return cluster.DalyInterval(ckptCost, mtbf) }

// --- Parallel jobs (LAM/MPI, CoCheck) ---

type (
	// ParallelJob is an MPI-style job with coordinated checkpointing.
	ParallelJob = mpi.Job
	// HaloRing is the ring-exchange parallel workload.
	HaloRing = mpi.HaloRing
)

// NewParallelJob creates an n-rank job on c, checkpointed per node with
// LAM/MPI (BLCR + coordination).
func NewParallelJob(c *Cluster, nRanks int) *ParallelJob {
	return mpi.NewJob(c, nRanks, func() Mechanism { return syslevel.NewLAMMPI() })
}

// --- Survey artifacts ---

// Table1 renders the feature matrix probed from the live implementations
// (the reproduction of the paper's Table 1).
func Table1() string {
	return taxonomy.RenderTable(ProbeTable1())
}

// ProbeTable1 returns the twelve mechanisms' probed feature rows.
func ProbeTable1() []Features {
	ms := []Mechanism{
		NewVMADump(0, nil), NewBProc(), NewEPCKPT(), NewCRAK(), NewUCLiK(),
		NewCHPOX(), NewZAP(), NewBLCR(), NewLAMMPI(), NewPsncRC(),
		NewSoftwareSuspend(), NewCheckpointFork(0, nil),
	}
	out := make([]Features, 0, len(ms))
	for _, m := range ms {
		out = append(out, m.Features())
	}
	return out
}

// Table1Diff compares the probed matrix against the paper's published
// rows; empty means exact reproduction.
func Table1Diff() []string { return taxonomy.DiffTable(ProbeTable1()) }

// Figure1 renders the paper's classification tree.
func Figure1() string { return taxonomy.RenderTree(taxonomy.Figure1()) }
