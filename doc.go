// Package repro is a complete, executable reproduction of "Current
// Practice and a Direction Forward in Checkpoint/Restart Implementations
// for Fault Tolerance" (Sancho, Petrini, Davis, Gioiosa, Jiang — LANL,
// IPPS 2005).
//
// The paper surveys checkpoint/restart (C/R) implementations for fault
// tolerance in large-scale Linux clusters; this package turns that survey
// into a running system. It provides:
//
//   - a deterministic simulated operating system (processes, virtual
//     memory with page protection and faults, signals, a priority
//     scheduler, a filesystem with /proc and /dev, loadable kernel
//     modules, kernel threads) with an explicit 2005-calibrated cost
//     model;
//   - working implementations of all twelve surveyed mechanisms —
//     VMADump, BProc, EPCKPT, CRAK, ZAP, UCLiK, CHPOX, BLCR, LAM/MPI,
//     PsncR/C, Software Suspend, and Checkpoint — each built from exactly
//     the kernel facilities its real counterpart uses, plus the
//     user-level schemes of §3 (libckpt, Condor-style signal handlers,
//     Esky timers, LD_PRELOAD, libtckpt) and the hardware schemes of
//     §4.2 (ReVive, SafetyNet);
//   - TICK, the paper's "direction forward" made concrete: a transparent,
//     incremental, automatically-initiated kernel-level checkpointer;
//   - the fault-tolerance substrate of §1: clusters with fail-stop
//     failure injection, local/remote stable storage, Young/Daly interval
//     policy, an autonomic MTBF-adaptive manager, process migration, gang
//     scheduling, and coordinated checkpointing of MPI-style parallel
//     jobs.
//
// The survey's Figure 1 (taxonomy) and Table 1 (feature matrix) are
// regenerated from the live implementations by cmd/crsurvey; the
// experiments derived from the paper's qualitative claims (E1–E10 in
// DESIGN.md) are run by cmd/crbench and the benchmarks in bench_test.go.
//
// Quick start
//
//	reg := repro.NewRegistry()
//	app := repro.Dense{MiB: 64}
//	reg.MustRegister(app)
//	k := repro.NewMachine("node0", reg)
//
//	m := repro.NewCRAK()          // pick any surveyed mechanism
//	_ = m.Install(k)              // load the kernel module
//	p, _ := k.Spawn(app.Name())
//	disk := repro.NewLocalDisk("disk0")
//
//	tk, _ := repro.Checkpoint(m, k, p, disk) // ioctl → kernel thread → image
//	k.Exit(p, 137)                           // the process dies
//	chain, _ := repro.LoadChain(disk, tk.Image().ObjectName())
//	p2, _ := m.Restart(k, chain, true)       // resumes bit-exactly
//
// See the examples/ directory for runnable end-to-end scenarios.
package repro
