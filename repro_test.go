package repro_test

import (
	"strings"
	"testing"

	"repro"
)

// TestQuickstartFlow exercises the doc.go quick-start path end to end.
func TestQuickstartFlow(t *testing.T) {
	reg := repro.NewRegistry()
	app := repro.Dense{MiB: 4}
	reg.MustRegister(app)
	k := repro.NewMachine("node0", reg)

	m := repro.NewCRAK()
	if err := m.Install(k); err != nil {
		t.Fatal(err)
	}
	p, err := k.Spawn(app.Name())
	if err != nil {
		t.Fatal(err)
	}
	repro.SetIterations(p, 8)
	disk := repro.NewLocalDisk("disk0")
	for p.Regs().PC < 4 {
		k.RunFor(repro.Millisecond)
	}
	tk, err := repro.Checkpoint(m, k, p, disk)
	if err != nil {
		t.Fatal(err)
	}
	k.Exit(p, 137)
	k.Procs.Remove(p.PID)
	chain, err := repro.LoadChain(disk, tk.Img.ObjectName())
	if err != nil {
		t.Fatal(err)
	}
	p2, err := m.Restart(k, chain, true)
	if err != nil {
		t.Fatal(err)
	}
	if !k.RunUntilExit(p2, k.Now().Add(repro.Minute)) {
		t.Fatal("restarted process stuck")
	}
	if repro.Fingerprint(p2) == 0 {
		t.Fatal("no result")
	}
}

func TestTable1ExactReproduction(t *testing.T) {
	if diffs := repro.Table1Diff(); len(diffs) != 0 {
		t.Fatalf("Table 1 mismatches:\n%s", strings.Join(diffs, "\n"))
	}
	out := repro.Table1()
	for _, name := range []string{"VMADump", "BPROC", "EPCKPT", "CRAK", "UCLiK", "CHPOX", "ZAP", "BLCR", "LAM/MPI", "PsncR/C", "Software Suspend", "Checkpoint"} {
		if !strings.Contains(out, name) {
			t.Fatalf("Table 1 missing %s:\n%s", name, out)
		}
	}
}

func TestFigure1Rendering(t *testing.T) {
	fig := repro.Figure1()
	for _, want := range []string{"user-level", "system-level", "hardware", "kernel thread"} {
		if !strings.Contains(fig, want) {
			t.Fatalf("Figure 1 missing %q:\n%s", want, fig)
		}
	}
}

func TestIntervalFormulas(t *testing.T) {
	y := repro.YoungInterval(30*repro.Second, 12*repro.Hour)
	if y <= 0 {
		t.Fatal("Young interval")
	}
	if d := repro.DalyInterval(30*repro.Second, 12*repro.Hour); d <= 0 {
		t.Fatal("Daly interval")
	}
}

func TestSuiteFacade(t *testing.T) {
	progs := repro.Suite(2)
	if len(progs) != 5 {
		t.Fatalf("suite size %d", len(progs))
	}
	reg := repro.NewRegistry()
	for _, p := range progs {
		reg.MustRegister(p)
	}
	k := repro.NewMachine("suite", reg)
	for _, prog := range progs {
		p, err := k.Spawn(prog.Name())
		if err != nil {
			t.Fatal(err)
		}
		repro.SetIterations(p, 3)
		if !k.RunUntilExit(p, k.Now().Add(repro.Minute)) {
			t.Fatalf("%s stuck", prog.Name())
		}
	}
}

func TestCoalesceFacade(t *testing.T) {
	app := repro.Sparse{MiB: 1, WriteFrac: 0.2, Seed: 5}
	reg := repro.NewRegistry()
	reg.MustRegister(app)
	k := repro.NewMachine("n", reg)
	tick := repro.NewTICK()
	if err := tick.Install(k); err != nil {
		t.Fatal(err)
	}
	p, _ := k.Spawn(app.Name())
	repro.SetIterations(p, 1<<30)
	disk := repro.NewLocalDisk("d")
	var leaf string
	for i := 0; i < 3; i++ {
		k.RunFor(2 * repro.Millisecond)
		tk, err := repro.Checkpoint(tick, k, p, disk)
		if err != nil {
			t.Fatal(err)
		}
		leaf = tk.Img.ObjectName()
	}
	chain, err := repro.LoadChain(disk, leaf)
	if err != nil {
		t.Fatal(err)
	}
	if err := repro.VerifyChain(chain); err != nil {
		t.Fatal(err)
	}
	single, err := repro.Coalesce(chain)
	if err != nil {
		t.Fatal(err)
	}
	if single.Mode.String() != "full" {
		t.Fatalf("coalesced mode %v", single.Mode)
	}
}

func TestParallelJobFacade(t *testing.T) {
	c := repro.NewCluster(2, 3, repro.NewRegistry())
	j := repro.NewParallelJob(c, 2)
	if err := j.Launch(repro.HaloRing{MiB: 1, Iterations: 6, PagesPerIter: 8}); err != nil {
		t.Fatal(err)
	}
	if !j.RunUntilDone(repro.Minute) {
		t.Fatal("job stuck")
	}
	fps, err := j.Fingerprints()
	if err != nil || len(fps) != 2 || fps[0] == 0 {
		t.Fatalf("fingerprints %v %v", fps, err)
	}
}
